"""Client side of the shard protocol: connection pool and failover set.

:class:`RemoteShardClient` speaks :mod:`repro.net.protocol` to one server
address over a small pool of persistent TCP connections — reconnect with
exponential backoff, retry-once when a pooled (possibly stale) connection
dies mid-request, socket timeouts derived from the request's deadline
budget so a dead server can never hang a caller.  Every failure is
counted by kind (stale retry, truncation, reset, timeout, CRC) so the
chaos suite can reconcile client-observed faults exactly against the
:mod:`repro.net.chaos` proxy's injected-fault log.

:class:`RemoteReplicaSet` stacks R clients (one per replica server) behind
the *exact* surface :class:`~repro.cluster.ReplicaSet` exposes to
:class:`~repro.cluster.ShardRouter` — ``execute(query, timeout) ->
(response, retries)``, rotation over healthy replicas, sticky quarantine
on degraded answers, :class:`~repro.cluster.ShardUnavailableError` when
every replica fails — plus the resilience layer from
:mod:`repro.net.resilience`: a per-replica circuit breaker (open circuits
leave the attempt order entirely and are rediscovered by half-open trials
or background health probes), a retry token budget charged for every
failover or hedge attempt, and optional hedged requests (after a
configurable delay the straggler's query is fired at the next available
replica and the first answer wins).  ``execute`` is deadline-aware end to
end: attempts carry the *remaining* budget and failover stops once the
deadline expires, so no request ever outlives its budget plus one socket
grace period.
"""

from __future__ import annotations

import concurrent.futures
import socket
import threading
import time
from typing import Callable, List, Optional, Sequence, Tuple

from ..analysis import make_lock
from ..core import DirectionalQuery
from ..service import Deadline, MetricsRegistry, ServiceResponse
from . import protocol
from .protocol import HealthReport, MessageType, RemoteSearchResult
from .resilience import (
    BreakerState,
    CircuitBreaker,
    HedgePolicy,
    ResilienceConfig,
    RetryBudget,
)

Address = Tuple[str, int]


class TransportError(RuntimeError):
    """The connection to a server failed (connect, send, or receive)."""

    def __init__(self, address: Address, detail: str) -> None:
        self.address = address
        super().__init__(f"{address[0]}:{address[1]}: {detail}")


class RemoteShardClient:
    """A pooled, reconnecting client for one shard server address."""

    def __init__(self, address: Address,
                 connect_timeout: float = 5.0,
                 request_timeout: float = 30.0,
                 deadline_grace: float = 2.0,
                 connect_attempts: int = 3,
                 backoff: float = 0.05,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if connect_attempts < 1:
            raise ValueError(
                f"connect_attempts must be >= 1: {connect_attempts}")
        self.address = (address[0], int(address[1]))
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        #: Extra seconds past the deadline budget before the socket times
        #: out: the server answers an expired budget immediately, so only
        #: a dead/wedged server is ever caught by the socket timeout.
        self.deadline_grace = deadline_grace
        self.connect_attempts = connect_attempts
        self.backoff = backoff
        self.metrics = metrics
        self._idle: List[socket.socket] = []
        self._lock = make_lock("net.client")
        self._closed = False
        self.reconnects = 0

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).increment()

    # -- connection pool ----------------------------------------------------

    def _connect(self) -> socket.socket:
        """Dial the server, with exponential backoff between attempts."""
        last: Optional[OSError] = None
        for attempt in range(self.connect_attempts):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            try:
                conn = socket.create_connection(
                    self.address, timeout=self.connect_timeout)
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                with self._lock:
                    self.reconnects += 1
                return conn
            except OSError as exc:
                last = exc
        self._count("net_client_connect_failures_total")
        raise TransportError(
            self.address,
            f"connect failed after {self.connect_attempts} attempts: {last}")

    def _acquire(self) -> Tuple[socket.socket, bool]:
        """A pooled connection (``reused=True``) or a fresh one."""
        with self._lock:
            if self._closed:
                raise TransportError(self.address, "client is closed")
            if self._idle:
                return self._idle.pop(), True
        return self._connect(), False

    def _release(self, conn: socket.socket) -> None:
        with self._lock:
            if not self._closed:
                self._idle.append(conn)
                return
        _close_quietly(conn)

    def close(self) -> None:
        """Drop every pooled connection; subsequent requests fail fast."""
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
        for conn in idle:
            _close_quietly(conn)

    def __enter__(self) -> "RemoteShardClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request/response ---------------------------------------------------

    def _roundtrip(self, frame: bytes, timeout: float,
                   ) -> Tuple[MessageType, bytes]:
        """Send one frame, read one frame; retry once on a stale socket.

        A pooled connection may have been closed by the server (restart,
        idle reap) since its last use — that failure mode is retried once
        on a fresh connection.  A fresh connection's failure is the
        server's, and surfaces as :class:`TransportError`.  Each failure
        kind increments its own ``net_client_*`` counter so injected
        faults reconcile exactly with observed ones.
        """
        for _ in range(2):
            conn, reused = self._acquire()
            conn.settimeout(timeout)
            try:
                conn.sendall(frame)
                msg_type, payload = protocol.read_frame(
                    lambda count: _recv_exactly(conn, count))
            except protocol.TruncatedFrame as exc:
                _close_quietly(conn)
                if reused:
                    self._count("net_client_stale_retries_total")
                    continue
                self._count("net_client_truncated_total")
                raise TransportError(self.address, str(exc)) from None
            except socket.timeout:
                _close_quietly(conn)
                self._count("net_client_timeouts_total")
                raise TransportError(
                    self.address,
                    f"no response within {timeout:.3f}s") from None
            except OSError as exc:
                _close_quietly(conn)
                if reused:
                    self._count("net_client_stale_retries_total")
                    continue
                self._count("net_client_reset_total")
                raise TransportError(self.address, str(exc)) from None
            except protocol.ChecksumMismatch:
                # Corruption on the wire, caught by the CRC before any
                # field was parsed; the connection is poisoned.
                _close_quietly(conn)
                self._count("net_client_crc_errors_total")
                raise
            except protocol.ProtocolError:
                # The stream is desynchronized or the peer is not a DESKS
                # server; the connection is poisoned either way.
                _close_quietly(conn)
                self._count("net_client_protocol_errors_total")
                raise
            self._release(conn)
            return msg_type, payload
        raise TransportError(  # pragma: no cover - loop always returns/raises
            self.address, "request failed on a fresh connection")

    def _expect(self, frame: bytes, want: MessageType,
                timeout: float) -> bytes:
        msg_type, payload = self._roundtrip(frame, timeout)
        if msg_type is MessageType.ERROR:
            raise protocol.decode_error(payload)
        if msg_type is not want:
            raise protocol.ProtocolError(
                f"expected {want.name}, server sent {msg_type.name}")
        return payload

    def search(self, query: DirectionalQuery,
               budget: Optional[float] = None) -> RemoteSearchResult:
        """Execute ``query`` remotely under ``budget`` remaining seconds.

        Raises :class:`~repro.net.protocol.OverloadError` when the server
        sheds the request, :class:`~repro.net.protocol.RpcError` for other
        typed server errors, :class:`TransportError` when the server is
        unreachable or silent past the budget plus grace.
        """
        timeout = (self.request_timeout if budget is None
                   else budget + self.deadline_grace)
        frame = protocol.encode_frame(
            MessageType.SEARCH_REQUEST,
            protocol.encode_search_request(query, budget))
        payload = self._expect(frame, MessageType.SEARCH_RESPONSE, timeout)
        return protocol.decode_search_response(payload)

    def execute_statement(self, statement: str,
                          budget: Optional[float] = None,
                          ) -> "protocol.RemoteStatementResult":
        """Execute one DQL statement remotely; decode its typed outcome.

        The server parses, plans, and executes; a statement the server
        cannot parse comes back as :class:`~repro.net.protocol.RpcError`
        (``BAD_REQUEST``) whose message carries the caret rendering.
        """
        timeout = (self.request_timeout if budget is None
                   else budget + self.deadline_grace)
        frame = protocol.encode_frame(
            MessageType.STATEMENT_REQUEST,
            protocol.encode_statement_request(statement, budget))
        payload = self._expect(frame, MessageType.STATEMENT_RESPONSE,
                               timeout)
        return protocol.decode_statement_response(payload)

    def health(self, timeout: float = 5.0) -> HealthReport:
        """Probe the server's health endpoint."""
        frame = protocol.encode_frame(MessageType.HEALTH_REQUEST)
        payload = self._expect(frame, MessageType.HEALTH_RESPONSE, timeout)
        return protocol.decode_health_response(payload)

    def stats(self, timeout: float = 5.0) -> dict:
        """Scrape the server's counter snapshot."""
        frame = protocol.encode_frame(MessageType.STATS_REQUEST)
        payload = self._expect(frame, MessageType.STATS_RESPONSE, timeout)
        return protocol.decode_stats_response(payload)


def _recv_exactly(conn: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = conn.recv(remaining)
        if not chunk:
            break
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _close_quietly(conn: socket.socket) -> None:
    try:
        conn.close()
    except OSError:  # pragma: no cover - close is best-effort
        pass


class RemoteReplica:
    """One replica server address plus its client-side health state."""

    def __init__(self, shard_id: int, replica_id: int,
                 client: RemoteShardClient, health_threshold: int,
                 breaker: Optional[CircuitBreaker] = None) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.client = client
        self.health_threshold = health_threshold
        self.breaker = breaker
        self.healthy = True
        self.consecutive_failures = 0
        self.total_failures = 0
        self.quarantined = False
        self.quarantine_cause: Optional[str] = None
        self._lock = make_lock("net.remote_replica")

    def mark_success(self) -> None:
        """A request succeeded; an unhealthy replica recovers."""
        with self._lock:
            self.consecutive_failures = 0
            self.healthy = True
        if self.breaker is not None:
            self.breaker.record_success()

    def mark_failure(self) -> None:
        """A request failed; ``health_threshold`` in a row → unhealthy."""
        with self._lock:
            self.consecutive_failures += 1
            self.total_failures += 1
            if self.consecutive_failures >= self.health_threshold:
                self.healthy = False
        if self.breaker is not None:
            self.breaker.record_failure()

    def quarantine(self, cause: str) -> None:
        """Sticky exclusion after a degraded (corruption) answer."""
        with self._lock:
            self.quarantined = True
            self.quarantine_cause = cause
            self.healthy = False

    @property
    def breaker_open(self) -> bool:
        """True while the circuit refuses attempts (OPEN, not yet due)."""
        return (self.breaker is not None
                and self.breaker.state is BreakerState.OPEN)

    def try_acquire(self) -> bool:
        """Gate one attempt through the breaker (always true without)."""
        return self.breaker is None or self.breaker.try_acquire()


class RemoteReplicaSet:
    """R remote replicas of one shard, behind the ReplicaSet surface.

    Drop-in for :class:`~repro.cluster.ReplicaSet` from the router's
    point of view: same ``execute`` contract, same rotation and
    healthy-first failover order, same sticky quarantine on degraded
    answers, same :class:`~repro.cluster.ShardUnavailableError` when the
    whole shard is gone — except attempts cross process (and eventually
    machine) boundaries, and the failover loop is governed by the
    resilience layer (circuit breakers, retry tokens, hedging; see
    :class:`~repro.net.resilience.ResilienceConfig`).
    """

    def __init__(self, shard_id: int, addresses: Sequence[Address],
                 health_threshold: int = 3,
                 metrics: Optional[MetricsRegistry] = None,
                 request_timeout: float = 30.0,
                 client_factory: Optional[
                     Callable[[Address], RemoteShardClient]] = None,
                 resilience: Optional[ResilienceConfig] = None,
                 retry_budget: Optional[RetryBudget] = None,
                 deadline_grace: float = 2.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not addresses:
            raise ValueError(f"shard {shard_id} needs >= 1 server address")
        if health_threshold < 1:
            raise ValueError(
                f"health_threshold must be >= 1: {health_threshold}")
        if client_factory is None:
            def client_factory(address: Address) -> RemoteShardClient:
                return RemoteShardClient(address,
                                         request_timeout=request_timeout,
                                         deadline_grace=deadline_grace,
                                         metrics=metrics)
        self.shard_id = shard_id
        self.metrics = metrics
        self.config = resilience if resilience is not None \
            else ResilienceConfig()
        self._clock = clock
        threshold = (self.config.breaker_failure_threshold
                     if self.config.breaker_failure_threshold is not None
                     else health_threshold)

        def _breaker() -> Optional[CircuitBreaker]:
            if not self.config.breaker_enabled:
                return None
            return CircuitBreaker(
                failure_threshold=threshold,
                reset_timeout=self.config.breaker_reset_timeout,
                clock=clock,
                on_transition=self._note_breaker_transition)

        self.replicas: List[RemoteReplica] = [
            RemoteReplica(shard_id, replica_id, client_factory(address),
                          health_threshold, breaker=_breaker())
            for replica_id, address in enumerate(addresses)
        ]
        if retry_budget is None:
            retry_budget = RetryBudget(
                max_tokens=self.config.retry_max_tokens,
                earn_per_success=self.config.retry_earn_per_success)
        self.retry_budget = retry_budget
        self._rotation = 0
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._probe_inflight = False
        self._last_probe = clock()
        self._lock = make_lock("net.remote_replica_set")

    def __len__(self) -> int:
        return len(self.replicas)

    # -- metrics helpers -----------------------------------------------------

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).increment()

    def _note_breaker_transition(self, came_from: BreakerState,
                                 to: BreakerState) -> None:
        self._count(f"net_breaker_{to.value}_total")

    def _note_tokens(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("net_retry_tokens").set(
                self.retry_budget.tokens)

    # -- attempt planning ----------------------------------------------------

    def _attempt_plan(self) -> List[Tuple[RemoteReplica, bool]]:
        """Failover order as ``(replica, last_resort)`` pairs.

        Healthy first from a rotating start, breaker-open circuits
        excluded, quarantined excluded always.  When *every* circuit is
        open the whole rotation comes back flagged ``last_resort=True``
        (attempted past the breaker): a shard must degrade to
        :class:`~repro.cluster.ShardUnavailableError` through real
        attempts, never wedge behind its own breakers.
        """
        with self._lock:
            start = self._rotation
            self._rotation = (self._rotation + 1) % len(self.replicas)
        rotated = [r for r in (self.replicas[start:] + self.replicas[:start])
                   if not r.quarantined]
        admitted = [r for r in rotated if not r.breaker_open]
        ordered = ([r for r in admitted if r.healthy]
                   + [r for r in admitted if not r.healthy])
        if ordered:
            return [(r, False) for r in ordered]
        return [(r, True) for r in rotated]

    def _spend_retry_token(self) -> bool:
        """Charge one retry token; ``False`` means stop retrying."""
        allowed = self.retry_budget.try_spend()
        self._count("net_retry_tokens_spent_total" if allowed
                    else "net_retries_denied_total")
        self._note_tokens()
        return allowed

    # -- one attempt ---------------------------------------------------------

    def _attempt(self, replica: RemoteReplica, query: DirectionalQuery,
                 budget: Optional[float],
                 ) -> Tuple[str, object]:
        """One replica attempt with full health/metrics bookkeeping.

        Returns ``("ok", ServiceResponse)``, ``("error", exception)``,
        or ``("fatal", exception)`` — fatal means a deterministic
        client-fault error (``BAD_REQUEST``) that must surface to the
        caller immediately and never counts against replica health.
        """
        started = time.monotonic()
        try:
            remote = replica.client.search(query, budget=budget)
        except protocol.RpcError as exc:
            if (exc.code is protocol.ErrorCode.BAD_REQUEST
                    and not isinstance(exc, protocol.OverloadError)):
                # The request is malformed, not the replica: retrying it
                # anywhere would fail identically, and marking health
                # would let one bad query poison every replica.
                return "fatal", exc
            replica.mark_failure()
            self._count("cluster_replica_failures_total")
            return "error", exc
        except (TransportError, protocol.ProtocolError) as exc:
            replica.mark_failure()
            self._count("cluster_replica_failures_total")
            return "error", exc
        if remote.degraded:
            # The remote engine hit corruption and refused to answer:
            # park this replica exactly as the in-process set would.
            cause = remote.failure_cause or "degraded response"
            replica.quarantine(cause)
            self._count("cluster_replicas_quarantined_total")
            return "error", RuntimeError(
                f"replica {replica.replica_id} degraded: {cause}")
        replica.mark_success()
        self.retry_budget.record_success()
        self._note_tokens()
        response = ServiceResponse(
            query=query,
            result=remote.result,
            cached=remote.cached,
            generation=remote.generation,
            latency_seconds=time.monotonic() - started,
            stats=remote.stats)
        return "ok", response

    # -- the execute contract ------------------------------------------------

    def execute(self, query: DirectionalQuery,
                timeout: Optional[float] = None,
                ) -> Tuple[ServiceResponse, int]:
        """Serve ``query`` remotely, failing over across replica servers.

        Returns ``(response, retries)``; raises
        :class:`~repro.cluster.ShardUnavailableError` when every replica
        fails (dead process, shed under overload, protocol violation),
        when the retry budget refuses further attempts, or when the
        deadline expires mid-failover.  With a hedge policy configured,
        a straggling attempt is raced against the next available replica
        and the first answer wins.
        """
        self._maybe_kick_probe()
        deadline = Deadline.from_timeout(timeout)
        plan = self._attempt_plan()
        if self.config.hedge is not None and len(self.replicas) > 1:
            return self._execute_hedged(query, deadline, plan,
                                        self.config.hedge)
        return self._execute_sequential(query, deadline, plan)

    def _execute_sequential(self, query: DirectionalQuery,
                            deadline: Deadline,
                            plan: List[Tuple[RemoteReplica, bool]],
                            ) -> Tuple[ServiceResponse, int]:
        from ..cluster import ShardUnavailableError

        last_error: Optional[BaseException] = None
        attempts = 0
        for replica, last_resort in plan:
            if deadline.expired():
                break
            if not last_resort and not replica.try_acquire():
                continue
            if attempts >= 1 and not self._spend_retry_token():
                break
            attempts += 1
            kind, value = self._attempt(replica, query, deadline.budget())
            if kind == "ok":
                return value, attempts - 1  # type: ignore[return-value]
            if kind == "fatal":
                raise value  # type: ignore[misc]
            last_error = value  # type: ignore[assignment]
        raise ShardUnavailableError(self.shard_id, attempts, last_error)

    def _execute_hedged(self, query: DirectionalQuery, deadline: Deadline,
                        plan: List[Tuple[RemoteReplica, bool]],
                        hedge: HedgePolicy,
                        ) -> Tuple[ServiceResponse, int]:
        from ..cluster import ShardUnavailableError

        pool = self._executor()
        queue = list(plan)
        pending: dict = {}
        attempts = 0
        hedges_fired = 0
        last_error: Optional[BaseException] = None

        def launch(is_hedge: bool) -> bool:
            nonlocal attempts, hedges_fired
            while queue:
                replica, last_resort = queue.pop(0)
                if not last_resort and not replica.try_acquire():
                    continue
                if attempts >= 1 and not self._spend_retry_token():
                    queue.clear()
                    return False
                attempts += 1
                future = pool.submit(self._attempt, replica, query,
                                     deadline.budget())
                pending[future] = is_hedge
                if is_hedge:
                    hedges_fired += 1
                    self._count("net_hedges_fired_total")
                return True
            return False

        launch(False)
        last_launch = time.monotonic()
        try:
            while pending:
                if deadline.expired():
                    break
                waits = []
                can_hedge = hedges_fired < hedge.max_hedges and bool(queue)
                if can_hedge:
                    waits.append(max(
                        0.0,
                        hedge.delay - (time.monotonic() - last_launch)))
                if not deadline.is_unbounded:
                    waits.append(deadline.remaining() + 0.05)
                done, _ = concurrent.futures.wait(
                    pending, timeout=min(waits) if waits else None,
                    return_when=concurrent.futures.FIRST_COMPLETED)
                if not done:
                    if (can_hedge and
                            time.monotonic() - last_launch >= hedge.delay):
                        if launch(True):
                            last_launch = time.monotonic()
                    continue
                for future in done:
                    was_hedge = pending.pop(future)
                    kind, value = future.result()
                    if kind == "ok":
                        if was_hedge:
                            self._count("net_hedges_won_total")
                        return value, attempts - 1
                    if kind == "fatal":
                        raise value
                    last_error = value
                if not pending and launch(False):
                    last_launch = time.monotonic()
        finally:
            # First answer won (or the request failed): abandon the
            # stragglers.  Queued attempts are cancelled outright; ones
            # already on the wire run to completion in the pool and
            # still record their health/breaker outcomes.
            for future in pending:
                future.cancel()
        raise ShardUnavailableError(self.shard_id, attempts, last_error)

    def _executor(self) -> concurrent.futures.ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                # Sized for straggler pile-up, not steady state: every
                # abandoned hedge loser against a silent (blackholed)
                # replica holds a worker until its socket timeout lands,
                # and a saturated pool would starve *new* primary
                # attempts.  Workers are created lazily, so the high cap
                # costs nothing under healthy traffic.
                self._pool = concurrent.futures.ThreadPoolExecutor(
                    max_workers=max(32, 4 * len(self.replicas)),
                    thread_name_prefix=f"hedge-shard{self.shard_id}")
            return self._pool

    # -- probe-based recovery ------------------------------------------------

    def probe_unavailable(self, timeout: Optional[float] = None) -> List[int]:
        """Health-probe every excluded replica; returns recovered ids.

        A replica that answers its :meth:`RemoteShardClient.health` RPC
        is marked successful — closing its breaker and restoring it to
        healthy-first rotation — without waiting for an in-band request
        to be risked against it.  Quarantined replicas stay parked.
        """
        timeout = self.config.probe_timeout if timeout is None else timeout
        recovered: List[int] = []
        for replica in self.replicas:
            if replica.quarantined:
                continue
            state = (replica.breaker.state if replica.breaker is not None
                     else BreakerState.CLOSED)
            if replica.healthy and state is BreakerState.CLOSED:
                continue
            try:
                ok = replica.client.health(timeout=timeout).ok
            except (TransportError, protocol.ProtocolError,
                    protocol.RpcError):
                ok = False
            if ok:
                replica.mark_success()
                self._count("net_probe_recoveries_total")
                recovered.append(replica.replica_id)
            else:
                replica.mark_failure()
        return recovered

    def _maybe_kick_probe(self) -> None:
        """Opportunistically probe unavailable replicas off-path."""
        interval = self.config.probe_interval
        if interval is None:
            return
        now = self._clock()
        if not any(not r.quarantined and (not r.healthy or r.breaker_open)
                   for r in self.replicas):
            return
        with self._lock:
            if self._probe_inflight or now - self._last_probe < interval:
                return
            self._probe_inflight = True
            self._last_probe = now
        threading.Thread(target=self._probe_worker,
                         name=f"probe-shard{self.shard_id}",
                         daemon=True).start()

    def _probe_worker(self) -> None:
        try:
            self.probe_unavailable()
        finally:
            with self._lock:
                self._probe_inflight = False

    # -- inspection / shutdown -----------------------------------------------

    def quarantined_replicas(self) -> List[int]:
        """Replica ids parked for corruption (sticky)."""
        return [r.replica_id for r in self.replicas if r.quarantined]

    def health_summary(self) -> List[dict]:
        """Per-replica health for stats/CLI output."""
        return [
            {
                "replica_id": r.replica_id,
                "healthy": r.healthy,
                "consecutive_failures": r.consecutive_failures,
                "total_failures": r.total_failures,
                "breaker": (r.breaker.state.value if r.breaker is not None
                            else "disabled"),
                "address": f"{r.client.address[0]}:{r.client.address[1]}",
            }
            for r in self.replicas
        ]

    def close(self) -> None:
        """Close every replica's connection pool and the hedge pool."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        for replica in self.replicas:
            replica.client.close()
