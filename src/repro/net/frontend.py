"""The asyncio front door: many clients, one router, bounded in-flight.

:class:`ClusterFrontend` is what sits at the edge of a DESKS deployment.
It accepts client connections on an asyncio event loop (thousands of
mostly-idle connections cost coroutines, not threads), speaks the same
:mod:`repro.net.protocol` frames as the shard servers, and funnels
search requests into a :class:`~repro.cluster.ShardRouter` — local
shards or :class:`~repro.net.RemoteReplicaSet` transports, the front
door cannot tell.

The event loop never blocks: searches run on a bounded worker pool via
``run_in_executor``, and *admission control happens before the hop* — at
``max_inflight`` concurrent searches the front door answers with a typed
``OVERLOAD`` frame immediately instead of queueing unboundedly.  A shed
request costs microseconds; an accepted request's deadline budget rides
the request into the router, across the wire to the shard servers, and
back as ``partial=True`` when it runs out.  Replica failover is the
router's transport's job; the front door only has to not fall over.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from ..cluster import ShardRouter
from ..core import QueryResult
from ..lang import DqlError, DqlExecutor, DqlSyntaxError, RouterBackend
from ..service import MetricsRegistry
from . import protocol
from .protocol import ErrorCode, MessageType


class ClusterFrontend:
    """Serve a router's scatter-gather over asyncio with backpressure."""

    def __init__(self, router: ShardRouter,
                 host: str = "127.0.0.1", port: int = 0,
                 max_inflight: int = 64,
                 num_workers: int = 8,
                 default_timeout: Optional[float] = None,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1: {max_inflight}")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1: {num_workers}")
        self.router = router
        self.host = host
        self.port = port
        self.max_inflight = max_inflight
        self.default_timeout = default_timeout
        self.metrics = metrics if metrics is not None else router.metrics
        #: Bound once the listener is up; ``(host, port)``.
        self.address: Optional[Tuple[str, int]] = None
        self._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="desks-frontdoor")
        # Text statements run the same scatter-gather as binary frames;
        # the executor seam (repro.lang) is what makes that one line.
        self._statements = DqlExecutor(RouterBackend(router))
        # Touched only on the event loop thread, so a plain counter is
        # race-free; admission must not await (a queued acquire *is* the
        # unbounded queue this class exists to prevent).
        self._active = 0
        self._started = time.monotonic()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ClusterFrontend":
        """Run the event loop on a background thread until :meth:`stop`."""
        ready = threading.Event()
        failure: list = []
        self._thread = threading.Thread(
            target=self._run_loop, args=(ready, failure),
            name="desks-frontdoor-loop", daemon=True)
        self._thread.start()
        ready.wait()
        if failure:
            raise failure[0]
        return self

    def _run_loop(self, ready: threading.Event, failure: list) -> None:
        try:
            asyncio.run(self._serve_async(ready))
        except Exception as exc:  # desks: noqa-DAL011 - cause surfaced to start() via the failure list
            failure.append(exc)
        finally:
            ready.set()

    async def _serve_async(self, ready: threading.Event) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.address = server.sockets[0].getsockname()[:2]
        ready.set()
        try:
            await self._stop_requested.wait()
        finally:
            server.close()
            await server.wait_closed()

    def stop(self) -> None:
        """Stop accepting, drain the loop, shut the worker pool down."""
        loop, stop_requested = self._loop, self._stop_requested
        if loop is not None and stop_requested is not None:
            try:
                loop.call_soon_threadsafe(stop_requested.set)
            except RuntimeError:  # pragma: no cover - loop already gone
                pass
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ClusterFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- connection handling -------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.metrics.counter("net_frontend_connections_total").increment()
        try:
            while True:
                try:
                    header = await reader.readexactly(protocol.HEADER_SIZE)
                    msg_type, length, crc = protocol.parse_header(header)
                    payload = (await reader.readexactly(length)
                               if length else b"")
                    protocol.check_payload(payload, crc, msg_type)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return  # client went away between/within frames
                except protocol.ProtocolError as exc:
                    self.metrics.counter(
                        "net_protocol_errors_total").increment()
                    await self._send(writer, protocol.encode_frame(
                        MessageType.ERROR, protocol.encode_error(
                            ErrorCode.BAD_REQUEST, str(exc))))
                    return
                frame = await self._dispatch(msg_type, payload)
                if not await self._send(writer, frame):
                    return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    async def _send(writer: asyncio.StreamWriter, frame: bytes) -> bool:
        try:
            writer.write(frame)
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            return False

    # -- request dispatch ----------------------------------------------------

    async def _dispatch(self, msg_type: MessageType,
                        payload: bytes) -> bytes:
        self.metrics.counter("net_frontend_requests_total").increment()
        try:
            if msg_type is MessageType.SEARCH_REQUEST:
                return await self._handle_search(payload)
            if msg_type is MessageType.HEALTH_REQUEST:
                return self._handle_health()
            if msg_type is MessageType.STATS_REQUEST:
                return self._handle_stats()
            if msg_type is MessageType.STATEMENT_REQUEST:
                return await self._handle_statement(payload)
        except protocol.ProtocolError as exc:
            self.metrics.counter("net_protocol_errors_total").increment()
            return protocol.encode_frame(
                MessageType.ERROR,
                protocol.encode_error(ErrorCode.BAD_REQUEST, str(exc)))
        except Exception as exc:  # noqa: BLE001 - typed to the peer
            return protocol.encode_frame(
                MessageType.ERROR,
                protocol.encode_error(
                    ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"))
        return protocol.encode_frame(
            MessageType.ERROR,
            protocol.encode_error(
                ErrorCode.BAD_REQUEST,
                f"{msg_type.name} is not a request type"))

    async def _handle_search(self, payload: bytes) -> bytes:
        query, budget = protocol.decode_search_request(payload)
        if budget is None:
            budget = self.default_timeout
        if budget is not None and budget <= 0.0:
            self.metrics.counter("net_deadline_expired_total").increment()
            return protocol.encode_frame(
                MessageType.SEARCH_RESPONSE,
                protocol.encode_search_response(
                    QueryResult([], partial=True)))
        if self._active >= self.max_inflight:
            self.metrics.counter("net_overload_total").increment()
            return protocol.encode_frame(
                MessageType.ERROR,
                protocol.encode_error(
                    ErrorCode.OVERLOAD,
                    f"front door at its {self.max_inflight} in-flight "
                    "search limit"))
        self._active += 1
        try:
            response = await asyncio.get_running_loop().run_in_executor(
                self._executor, self.router.execute, query, budget)
        finally:
            self._active -= 1
        failure_cause = None
        if response.degraded:
            # Brownout: answer with what the surviving shards produced,
            # typed as a partial naming exactly which shards were lost,
            # instead of failing the whole query.
            failure_cause = ("shards unavailable: "
                            + ",".join(map(str, response.failed_shards)))
            self.metrics.counter("net_frontend_brownouts_total").increment()
        return protocol.encode_frame(
            MessageType.SEARCH_RESPONSE,
            protocol.encode_search_response(
                response.result,
                server_latency=response.latency_seconds,
                degraded=response.degraded,
                failure_cause=failure_cause,
                unavailable_shards=response.unavailable_shards))

    async def _handle_statement(self, payload: bytes) -> bytes:
        """Parse and execute one DQL statement frame off the event loop.

        Statements share the search path's admission control (parsing is
        microseconds, but a ``SELECT``/``EXPLAIN`` is a full scatter-
        gather) and run on the worker pool via ``run_in_executor`` so the
        loop never blocks.  Parse failures answer ``BAD_REQUEST`` with
        the caret rendering; ``EXPLAIN`` here is plan-only (the router
        cannot reconcile spans across shard processes).
        """
        statement, budget = protocol.decode_statement_request(payload)
        self.metrics.counter("net_frontend_statements_total").increment()
        if budget is None:
            budget = self.default_timeout
        if self._active >= self.max_inflight:
            self.metrics.counter("net_overload_total").increment()
            return protocol.encode_frame(
                MessageType.ERROR,
                protocol.encode_error(
                    ErrorCode.OVERLOAD,
                    f"front door at its {self.max_inflight} in-flight "
                    "search limit"))
        self._active += 1
        try:
            outcome = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._statements.execute, statement,
                budget)
        except DqlSyntaxError as exc:
            self.metrics.counter(
                "net_frontend_statement_errors_total").increment()
            return protocol.encode_frame(
                MessageType.ERROR,
                protocol.encode_error(ErrorCode.BAD_REQUEST, exc.render()))
        except DqlError as exc:
            self.metrics.counter(
                "net_frontend_statement_errors_total").increment()
            return protocol.encode_frame(
                MessageType.ERROR,
                protocol.encode_error(ErrorCode.INTERNAL, str(exc)))
        finally:
            self._active -= 1
        return protocol.encode_frame(
            MessageType.STATEMENT_RESPONSE,
            protocol.encode_statement_outcome(outcome))

    def _handle_health(self) -> bytes:
        report = protocol.HealthReport(
            ok=True,
            shard_id=self.router.num_shards,
            generation=0,
            num_pois=sum(len(shard.spec)
                         for shard in self.router.shards),
            requests_total=self.metrics.counter(
                "net_frontend_requests_total").value,
            uptime_seconds=time.monotonic() - self._started)
        return protocol.encode_frame(MessageType.HEALTH_RESPONSE,
                                     protocol.encode_health_response(report))

    def _handle_stats(self) -> bytes:
        snapshot = self.metrics.to_dict()
        values = {"uptime_seconds": snapshot["uptime_seconds"],
                  "num_shards": self.router.num_shards,
                  "max_inflight": self.max_inflight}
        for name, value in snapshot["counters"].items():
            values[name] = value
        latency = snapshot["histograms"].get(
            "cluster_query_latency_seconds")
        if latency:
            for key in ("count", "mean", "p50", "p95", "p99"):
                values[f"cluster_latency_{key}"] = latency[key]
        return protocol.encode_frame(MessageType.STATS_RESPONSE,
                                     protocol.encode_stats_response(values))
