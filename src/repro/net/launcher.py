"""Spawn, probe, and stop shard server processes; wire up remote routers.

:class:`ClusterLauncher` turns a :meth:`~repro.cluster.ShardRouter.save`
deployment directory into running OS processes: one ``repro
shard-server`` per (shard, replica), each binding an ephemeral port and
announcing it with a ``SHARD-SERVER READY host port`` line that the
launcher parses before health-probing the socket.  ``kill()`` delivers
SIGKILL to a single replica — the primitive the failover tests use to
take a *real* process down mid-run — and ``stop()`` tears the fleet
down.

:func:`connect_router` is the other half: it rebuilds the routing
statistics (shard MBRs, keyword document frequencies, cardinality
estimators) from the deployment's cheap per-shard ``pois.csv`` files —
*without* loading any index — and returns a
:class:`~repro.cluster.ShardRouter` whose transports are
:class:`~repro.net.RemoteReplicaSet`\\ s over the launched addresses.
"""

from __future__ import annotations

import json
import os
import queue
import signal
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster import ShardRouter, spec_from_collection
from ..datasets import load_csv
from ..service import MetricsRegistry
from .client import Address, RemoteReplicaSet, RemoteShardClient, TransportError
from .resilience import ResilienceConfig, RetryBudget

#: The stdout line a shard server prints once it is accepting.
READY_PREFIX = "SHARD-SERVER READY"


def _read_manifest(deployment_dir: str) -> dict:
    """The caller-level cluster manifest of a saved deployment.

    ``save_sharded`` wraps the router's layout metadata under a ``meta``
    key next to its own format fields; unwrap it if present.
    """
    with open(os.path.join(deployment_dir, "meta.json"),
              encoding="utf-8") as handle:
        manifest = json.load(handle)
    nested = manifest.get("meta")
    return nested if isinstance(nested, dict) else manifest


class LaunchError(RuntimeError):
    """A server process failed to come up (or died during startup)."""


class ServerProcess:
    """One launched ``repro shard-server``: process handle plus address."""

    def __init__(self, shard_id: int, replica_id: int, directory: str,
                 process: "subprocess.Popen[str]", address: Address) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.directory = directory
        self.process = process
        self.address = address

    @property
    def alive(self) -> bool:
        """True while the OS process is still running."""
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL — no drain, no goodbye; how the failover tests die."""
        if self.alive:
            self.process.send_signal(signal.SIGKILL)
            self.process.wait(timeout=10.0)

    def terminate(self, timeout: float = 5.0) -> None:
        """Polite SIGTERM first; escalate to SIGKILL if ignored."""
        if not self.alive:
            return
        self.process.terminate()
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            self.process.kill()
            self.process.wait(timeout=timeout)


def _repro_pythonpath() -> str:
    """An absolute PYTHONPATH under which children can import repro.

    Tests launch servers after ``chdir`` into temp directories while the
    parent was started with a *relative* ``PYTHONPATH=src``, so children
    must be handed the resolved location of the package instead.
    """
    package_parent = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    existing = os.environ.get("PYTHONPATH", "")
    if not existing:
        return package_parent
    return package_parent + os.pathsep + existing


class ClusterLauncher:
    """Run every (shard, replica) of a saved deployment as a process."""

    def __init__(self, deployment_dir: str,
                 replication: int = 1,
                 host: str = "127.0.0.1",
                 num_workers: int = 2,
                 max_inflight: Optional[int] = None,
                 startup_timeout: float = 60.0,
                 python: Optional[str] = None) -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1: {replication}")
        self.deployment_dir = os.path.abspath(deployment_dir)
        self.replication = replication
        self.host = host
        self.num_workers = num_workers
        self.max_inflight = max_inflight
        self.startup_timeout = startup_timeout
        self.python = python if python is not None else sys.executable
        self.servers: List[ServerProcess] = []
        self.meta = _read_manifest(self.deployment_dir)
        id_lists = self.meta.get("shard_global_ids")
        if id_lists is None:
            raise LaunchError(
                f"{deployment_dir} has no cluster manifest "
                "(save it with ShardRouter.save)")
        self.num_shards = len(id_lists)

    # -- process control ----------------------------------------------------

    def _spawn(self, shard_id: int,
               replica_id: int) -> "subprocess.Popen[str]":
        shard_dir = os.path.join(self.deployment_dir, f"shard{shard_id}")
        command = [self.python, "-m", "repro", "shard-server",
                   "--directory", shard_dir,
                   "--host", self.host, "--port", "0",
                   "--shard-id", str(shard_id),
                   "--workers", str(self.num_workers)]
        if self.max_inflight is not None:
            command += ["--max-inflight", str(self.max_inflight)]
        env = dict(os.environ)
        env["PYTHONPATH"] = _repro_pythonpath()
        return subprocess.Popen(
            command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)

    def _await_ready(self, process: "subprocess.Popen[str]",
                     shard_id: int, replica_id: int) -> Address:
        """Wait for the READY line, then keep stdout drained forever."""
        lines: "queue.Queue[Optional[str]]" = queue.Queue()

        def pump() -> None:
            for line in process.stdout:  # ends when the process does
                lines.put(line)
            lines.put(None)

        threading.Thread(target=pump, daemon=True,
                         name=f"desks-net-stdout-{shard_id}.{replica_id}",
                         ).start()
        deadline = time.monotonic() + self.startup_timeout
        transcript: List[str] = []
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                process.kill()
                raise LaunchError(
                    f"shard {shard_id} replica {replica_id} not ready "
                    f"within {self.startup_timeout}s:\n"
                    + "".join(transcript))
            try:
                line = lines.get(timeout=remaining)
            except queue.Empty:
                continue
            if line is None:
                raise LaunchError(
                    f"shard {shard_id} replica {replica_id} exited "
                    f"(code {process.poll()}) before READY:\n"
                    + "".join(transcript))
            transcript.append(line)
            if line.startswith(READY_PREFIX):
                _, _, host, port = line.split()
                return (host, int(port))

    def start(self) -> Dict[int, List[Address]]:
        """Launch and health-probe every server; shard id → addresses.

        All processes are spawned before any READY line is awaited, so
        fleet startup costs one interpreter start + index load of wall
        clock, not ``num_shards * replication`` of them.
        """
        pending: List[Tuple[int, int, "subprocess.Popen[str]"]] = []
        try:
            for shard_id in range(self.num_shards):
                for replica_id in range(self.replication):
                    pending.append((shard_id, replica_id,
                                    self._spawn(shard_id, replica_id)))
            for shard_id, replica_id, process in pending:
                address = self._await_ready(process, shard_id, replica_id)
                shard_dir = os.path.join(self.deployment_dir,
                                         f"shard{shard_id}")
                self.servers.append(ServerProcess(
                    shard_id, replica_id, shard_dir, process, address))
            for server in self.servers:
                self._probe(server)
        except Exception:
            for _, _, process in pending:
                if process.poll() is None:
                    process.kill()
            self.stop()
            raise
        return self.addresses()

    def _probe(self, server: ServerProcess, attempts: int = 20) -> None:
        """Confirm the announced socket answers a health RPC."""
        with RemoteShardClient(server.address) as client:
            last: Optional[Exception] = None
            for attempt in range(attempts):
                if attempt:
                    time.sleep(0.05)
                try:
                    report = client.health()
                except (TransportError, OSError) as exc:
                    last = exc
                    continue
                if not report.ok or report.shard_id != server.shard_id:
                    raise LaunchError(
                        f"{server.address} answered for shard "
                        f"{report.shard_id}, expected {server.shard_id}")
                return
            raise LaunchError(
                f"shard {server.shard_id} replica {server.replica_id} at "
                f"{server.address} never passed a health probe: {last}")

    def addresses(self) -> Dict[int, List[Address]]:
        """Shard id → replica addresses, launch order preserved."""
        out: Dict[int, List[Address]] = {}
        for server in self.servers:
            out.setdefault(server.shard_id, []).append(server.address)
        return out

    def kill(self, shard_id: int, replica_id: int = 0) -> ServerProcess:
        """SIGKILL one replica's process; returns its (dead) handle."""
        for server in self.servers:
            if (server.shard_id, server.replica_id) == (shard_id,
                                                        replica_id):
                server.kill()
                return server
        raise KeyError(f"no server for shard {shard_id} "
                       f"replica {replica_id}")

    def alive(self) -> List[Tuple[int, int]]:
        """(shard_id, replica_id) of every still-running server."""
        return [(s.shard_id, s.replica_id) for s in self.servers if s.alive]

    def stop(self) -> None:
        """Terminate every server (TERM, then KILL)."""
        for server in self.servers:
            server.terminate()

    def __enter__(self) -> "ClusterLauncher":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def connect_router(deployment_dir: str,
                   addresses: Dict[int, Sequence[Address]],
                   num_workers: int = 8,
                   max_fanout: int = 4,
                   health_threshold: int = 3,
                   request_timeout: float = 30.0,
                   metrics: Optional[MetricsRegistry] = None,
                   resilience: Optional[ResilienceConfig] = None,
                   deadline_grace: float = 2.0,
                   ) -> ShardRouter:
    """A :class:`~repro.cluster.ShardRouter` over running shard servers.

    Rebuilds each shard's routing statistics from the deployment's
    ``shard<i>/pois.csv`` (a linear CSV read — the indexes stay in the
    server processes) and plugs a :class:`RemoteReplicaSet` per shard
    into :meth:`~repro.cluster.ShardRouter.from_transports`.  Pruning,
    MINDIST ordering, wave dispatch, early termination, and the top-k
    merge all run exactly as they do in-process.

    ``resilience`` tunes the client-side failure handling (circuit
    breakers, hedging, retry budget, recovery probes; see
    :class:`~repro.net.resilience.ResilienceConfig`); the default
    enables breakers and a background recovery probe.  One
    :class:`~repro.net.resilience.RetryBudget` is shared by every shard
    so failover across the whole router is bounded process-wide.
    """
    deployment_dir = os.path.abspath(deployment_dir)
    meta = _read_manifest(deployment_dir)
    id_lists = meta.get("shard_global_ids")
    if id_lists is None:
        raise ValueError(f"{deployment_dir} has no cluster manifest")
    registry = metrics if metrics is not None else MetricsRegistry()
    config = resilience if resilience is not None else ResilienceConfig(
        probe_interval=2.0)
    budget = RetryBudget(max_tokens=config.retry_max_tokens,
                         earn_per_success=config.retry_earn_per_success)
    shards = []
    for shard_id, ids in enumerate(id_lists):
        replica_addresses = addresses.get(shard_id)
        if not replica_addresses:
            raise ValueError(f"no server addresses for shard {shard_id}")
        collection = load_csv(os.path.join(
            deployment_dir, f"shard{shard_id}", "pois.csv"))
        if len(collection) != len(ids):
            raise ValueError(
                f"shard {shard_id} holds {len(collection)} POIs but the "
                f"manifest lists {len(ids)} ids")
        spec = spec_from_collection(shard_id, tuple(ids), collection)
        transport = RemoteReplicaSet(
            shard_id, list(replica_addresses),
            health_threshold=health_threshold,
            request_timeout=request_timeout,
            metrics=registry,
            resilience=config,
            retry_budget=budget,
            deadline_grace=deadline_grace)
        shards.append((spec, collection, transport))
    return ShardRouter.from_transports(
        shards, partitioner=meta.get("partitioner", "unknown"),
        num_workers=num_workers, max_fanout=max_fanout, metrics=registry)
