"""The out-of-process shard server: one durable shard behind a socket.

:class:`ShardServer` owns one shard's index (an in-memory
:class:`~repro.core.DesksIndex`, a saved index directory, or a durable
directory recovered via :class:`~repro.durability.DurableMutableIndex`)
wrapped in a PR-1 :class:`~repro.service.QueryEngine`, and serves the
:mod:`repro.net.protocol` RPCs over TCP:

* a blocking accept loop hands each connection to its own handler thread
  (connections are long-lived and mostly idle, so they must not occupy
  pool workers while waiting for the next frame);
* search work runs on the engine's worker pool, bounded by an admission
  semaphore: when ``max_inflight`` searches are already running the
  server answers with a typed ``OVERLOAD`` error *immediately* instead
  of queueing the request — the caller (front door or client) decides
  whether to fail over, retry, or surface the shed;
* the request's remaining deadline budget crosses the wire: an already
  expired budget returns an empty ``partial=True`` answer without
  touching the index, and a live one becomes the engine's cooperative
  :class:`~repro.service.Deadline`;
* malformed frames (bad magic, corrupt CRC, truncated payloads) get a
  best-effort typed error and cost only that connection — the accept
  loop and every other connection keep serving.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Optional, Union

from ..analysis import make_lock
from ..core import (
    DesksIndex,
    MutableDesksIndex,
    PruningMode,
    QueryResult,
    load_index,
)
from ..lang import (
    DqlError,
    DqlExecutor,
    DqlSyntaxError,
    EngineBackend,
    ShowPlan,
    parse,
)
from ..service import MetricsRegistry, QueryEngine
from . import protocol
from .protocol import ErrorCode, MessageType

#: Seconds the accept loop sleeps between shutdown-flag polls when the
#: listening socket has a timeout (keeps stop() latency bounded).
_ACCEPT_POLL = 0.2


def load_shard(path: str) -> Union[DesksIndex, MutableDesksIndex]:
    """Load the index stored at ``path`` — saved or durable directory.

    A durable directory (WAL + checkpoints, PR 3) is recovered through
    :class:`~repro.durability.DurableMutableIndex` so the server replays
    any tail the last checkpoint missed; a plain saved index loads
    through :func:`~repro.core.load_index`.
    """
    from ..durability import DurableMutableIndex, is_durable_dir

    if is_durable_dir(path):
        return DurableMutableIndex.recover(path)
    return load_index(path)


class ShardServer:
    """Serve one shard's search/health/stats RPCs on a TCP socket."""

    def __init__(self, index: Union[DesksIndex, MutableDesksIndex, str],
                 host: str = "127.0.0.1", port: int = 0,
                 shard_id: int = 0,
                 num_workers: int = 4,
                 max_inflight: Optional[int] = None,
                 mode: PruningMode = PruningMode.RD,
                 cache_capacity: int = 128,
                 metrics: Optional[MetricsRegistry] = None) -> None:
        if isinstance(index, str):
            index = load_shard(index)
        self.shard_id = shard_id
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.engine = QueryEngine(index, num_workers=num_workers,
                                  mode=mode, cache_capacity=cache_capacity,
                                  metrics=self.metrics)
        if max_inflight is None:
            max_inflight = 2 * num_workers
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1: {max_inflight}")
        self.max_inflight = max_inflight
        self._inflight = threading.BoundedSemaphore(max_inflight)
        # Statement frames run through the same executor surface the CLI
        # uses; binding it to the engine keeps the text path and the
        # binary query path answer-identical (same cache, same deadline).
        self._statements = DqlExecutor(EngineBackend(self.engine))
        self._started = time.monotonic()
        self._lock = make_lock("net.server")
        self._closed = False
        self._connections: set = set()
        self._accept_thread: Optional[threading.Thread] = None
        self._listener = socket.create_server((host, port), reuse_port=False)
        self._listener.settimeout(_ACCEPT_POLL)
        self.address = self._listener.getsockname()[:2]

    # -- lifecycle ----------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept and serve connections until :meth:`stop` is called."""
        while True:
            with self._lock:
                if self._closed:
                    return
            try:
                conn, _peer = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed under us by stop()
            self.metrics.counter("net_connections_total").increment()
            with self._lock:
                if self._closed:
                    # stop() won the race between accept and dispatch.
                    try:
                        conn.close()
                    except OSError:
                        pass
                    return
                self._connections.add(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name=f"desks-net-conn-{self.shard_id}", daemon=True)
            thread.start()

    def start(self) -> "ShardServer":
        """Run :meth:`serve_forever` on a background thread (tests)."""
        thread = threading.Thread(target=self.serve_forever,
                                  name=f"desks-net-accept-{self.shard_id}",
                                  daemon=True)
        thread.start()
        self._accept_thread = thread
        return self

    def stop(self) -> None:
        """Close the listener and every live connection; stop the engine.

        Open connections are dropped rather than drained: a pooled
        client notices the EOF as a stale connection and reconnects,
        which is exactly the failover path it already has to handle —
        answering late requests from a half-dead server would be worse.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            live = list(self._connections)
            self._connections.clear()
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        for conn in live:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self.engine.close()

    def __enter__(self) -> "ShardServer":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- connection handling -------------------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        """Serve frames on one connection until EOF or a protocol error."""
        conn.settimeout(None)

        def recv_exactly(count: int) -> bytes:
            chunks = []
            remaining = count
            while remaining:
                chunk = conn.recv(remaining)
                if not chunk:
                    break
                chunks.append(chunk)
                remaining -= len(chunk)
            return b"".join(chunks)

        try:
            while True:
                try:
                    msg_type, payload = protocol.read_frame(recv_exactly)
                except protocol.TruncatedFrame:
                    return  # clean EOF or a peer that died mid-frame
                except OSError:
                    return  # connection reset, or closed under us by stop()
                except protocol.ProtocolError as exc:
                    # The stream is unparseable past this point: tell the
                    # peer what was wrong (best effort) and drop it.  The
                    # server itself stays up.
                    self.metrics.counter(
                        "net_protocol_errors_total").increment()
                    self._try_send(conn, protocol.encode_frame(
                        MessageType.ERROR, protocol.encode_error(
                            ErrorCode.BAD_REQUEST, str(exc))))
                    return
                frame = self._dispatch(msg_type, payload)
                if not self._try_send(conn, frame):
                    return
        finally:
            with self._lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    @staticmethod
    def _try_send(conn: socket.socket, frame: bytes) -> bool:
        try:
            conn.sendall(frame)
            return True
        except OSError:
            return False

    # -- request dispatch ----------------------------------------------------

    def _dispatch(self, msg_type: MessageType, payload: bytes) -> bytes:
        """One request frame in, one response frame out."""
        self.metrics.counter("net_requests_total").increment()
        try:
            if msg_type is MessageType.SEARCH_REQUEST:
                return self._handle_search(payload)
            if msg_type is MessageType.HEALTH_REQUEST:
                return self._handle_health()
            if msg_type is MessageType.STATS_REQUEST:
                return self._handle_stats()
            if msg_type is MessageType.STATEMENT_REQUEST:
                return self._handle_statement(payload)
        except protocol.ProtocolError as exc:
            self.metrics.counter("net_protocol_errors_total").increment()
            return protocol.encode_frame(
                MessageType.ERROR,
                protocol.encode_error(ErrorCode.BAD_REQUEST, str(exc)))
        except Exception as exc:  # noqa: BLE001 - typed to the peer
            return protocol.encode_frame(
                MessageType.ERROR,
                protocol.encode_error(
                    ErrorCode.INTERNAL, f"{type(exc).__name__}: {exc}"))
        return protocol.encode_frame(
            MessageType.ERROR,
            protocol.encode_error(
                ErrorCode.BAD_REQUEST,
                f"{msg_type.name} is not a request type"))

    def _handle_search(self, payload: bytes) -> bytes:
        query, budget = protocol.decode_search_request(payload)
        if budget is not None and budget <= 0.0:
            # The caller's deadline was spent before the request arrived:
            # answer partial-and-empty *now* rather than queue work whose
            # answer nobody is waiting for.
            self.metrics.counter("net_deadline_expired_total").increment()
            return protocol.encode_frame(
                MessageType.SEARCH_RESPONSE,
                protocol.encode_search_response(
                    QueryResult([], partial=True),
                    generation=self.engine.generation))
        if not self._inflight.acquire(blocking=False):
            self.metrics.counter("net_overload_total").increment()
            return protocol.encode_frame(
                MessageType.ERROR,
                protocol.encode_error(
                    ErrorCode.OVERLOAD,
                    f"shard {self.shard_id} at its {self.max_inflight} "
                    "in-flight search limit"))
        try:
            response = self.engine.submit(query, budget).result()
        finally:
            self._inflight.release()
        return protocol.encode_frame(
            MessageType.SEARCH_RESPONSE,
            protocol.encode_search_response(
                response.result,
                cached=response.cached,
                generation=response.generation,
                server_latency=response.latency_seconds,
                stats=response.stats,
                degraded=response.degraded,
                failure_cause=response.failure_cause))

    def _handle_statement(self, payload: bytes) -> bytes:
        """Parse and execute one DQL statement frame.

        Parse failures answer ``BAD_REQUEST`` carrying the caret
        rendering (statement + ``^`` + reason) — the same text the local
        CLI shows.  ``SELECT`` and ``EXPLAIN`` statements run a search,
        so they sit under the same admission semaphore as binary search
        frames; ``SHOW`` is cheap operator traffic and bypasses it.
        """
        statement, budget = protocol.decode_statement_request(payload)
        self.metrics.counter("net_statements_total").increment()
        try:
            plan = parse(statement)
        except DqlSyntaxError as exc:
            self.metrics.counter("net_statement_errors_total").increment()
            return protocol.encode_frame(
                MessageType.ERROR,
                protocol.encode_error(ErrorCode.BAD_REQUEST, exc.render()))
        gated = not isinstance(plan, ShowPlan)
        if gated and not self._inflight.acquire(blocking=False):
            self.metrics.counter("net_overload_total").increment()
            return protocol.encode_frame(
                MessageType.ERROR,
                protocol.encode_error(
                    ErrorCode.OVERLOAD,
                    f"shard {self.shard_id} at its {self.max_inflight} "
                    "in-flight search limit"))
        try:
            outcome = self._statements.execute(plan, budget)
        except DqlError as exc:
            self.metrics.counter("net_statement_errors_total").increment()
            return protocol.encode_frame(
                MessageType.ERROR,
                protocol.encode_error(ErrorCode.INTERNAL, str(exc)))
        finally:
            if gated:
                self._inflight.release()
        return protocol.encode_frame(
            MessageType.STATEMENT_RESPONSE,
            protocol.encode_statement_outcome(outcome))

    def _handle_health(self) -> bytes:
        report = protocol.HealthReport(
            ok=True,
            shard_id=self.shard_id,
            generation=self.engine.generation,
            num_pois=len(self.engine.index.collection),
            requests_total=self.metrics.counter("net_requests_total").value,
            uptime_seconds=time.monotonic() - self._started)
        return protocol.encode_frame(MessageType.HEALTH_RESPONSE,
                                     protocol.encode_health_response(report))

    def _handle_stats(self) -> bytes:
        snapshot = self.metrics.to_dict()
        values = {"uptime_seconds": snapshot["uptime_seconds"],
                  "shard_id": self.shard_id,
                  "pid": os.getpid()}
        for name, value in snapshot["counters"].items():
            values[name] = value
        latency = snapshot["histograms"].get("query_latency_seconds")
        if latency:
            for key in ("count", "mean", "p50", "p95", "p99"):
                values[f"query_latency_{key}"] = latency[key]
        return protocol.encode_frame(MessageType.STATS_RESPONSE,
                                     protocol.encode_stats_response(values))


def run_shard_server(directory: str, host: str = "127.0.0.1",
                     port: int = 0, shard_id: int = 0,
                     num_workers: int = 4,
                     max_inflight: Optional[int] = None,
                     cache_capacity: int = 128,
                     mode: PruningMode = PruningMode.RD) -> int:
    """CLI entry: load ``directory``, announce readiness, serve forever.

    Prints ``SHARD-SERVER READY <host> <port>`` on stdout once the
    socket is bound and the index is loaded — the line
    :class:`~repro.net.launcher.ClusterLauncher` waits for — then blocks
    in the accept loop until interrupted.
    """
    server = ShardServer(directory, host=host, port=port,
                         shard_id=shard_id, num_workers=num_workers,
                         max_inflight=max_inflight,
                         cache_capacity=cache_capacity, mode=mode)
    bound_host, bound_port = server.address
    print(f"SHARD-SERVER READY {bound_host} {bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.stop()
    return 0
