"""Client-side resilience primitives for the RPC layer.

Three mechanisms, composable and individually testable, that keep a
:class:`~repro.net.RemoteReplicaSet` correct and *bounded* when the
network under it misbehaves (see :mod:`repro.net.chaos` for the fault
injector they are tested against):

:class:`CircuitBreaker`
    Per-replica closed/open/half-open state machine.  A run of failures
    opens the circuit, which removes the replica from the attempt order
    entirely (instead of merely sorting it last); after
    ``reset_timeout`` seconds one half-open trial is admitted, and its
    outcome decides between re-closing and re-opening.  The clock is
    injected so every transition is unit-testable without sleeping.

:class:`RetryBudget`
    A process-wide token bucket that caps failover and hedge attempts:
    each retry spends one token, each success earns ``earn_per_success``
    back (up to ``max_tokens``).  Under a partial outage retries are
    cheap and the bucket never empties; under a full outage or overload
    the bucket drains and the client stops amplifying — the classic
    defense against retry storms.

:class:`HedgePolicy`
    After ``delay`` seconds without an answer, fire the same query at
    the next available replica and take whichever answer lands first.
    Hedges spend retry tokens, so hedging can never amplify past the
    budget either.

:class:`ResilienceConfig` bundles the tunables so launchers and the CLI
can pass one object down through :func:`~repro.net.connect_router`.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..analysis import make_lock

__all__ = [
    "BreakerOpenError",
    "BreakerState",
    "CircuitBreaker",
    "HedgePolicy",
    "ResilienceConfig",
    "RetryBudget",
]


class BreakerState(enum.Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class BreakerOpenError(RuntimeError):
    """An attempt was refused because the breaker is open."""


class CircuitBreaker:
    """Closed/open/half-open breaker with an injected monotonic clock.

    Thread-safe.  ``try_acquire`` is the gate callers must pass before
    an attempt; ``record_success``/``record_failure`` report the
    attempt's outcome.  While OPEN every acquire is refused until
    ``reset_timeout`` elapses, at which point exactly
    ``half_open_max_trials`` concurrent trial attempts are admitted —
    one success re-closes the breaker, one failure re-opens it (and
    restarts the timer).
    """

    def __init__(self, failure_threshold: int = 3,
                 reset_timeout: float = 5.0,
                 half_open_max_trials: int = 1,
                 clock: Callable[[], float] = time.monotonic,
                 on_transition: Optional[
                     Callable[[BreakerState, BreakerState], None]] = None,
                 ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1: {failure_threshold}")
        if reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0: {reset_timeout}")
        if half_open_max_trials < 1:
            raise ValueError(
                f"half_open_max_trials must be >= 1: {half_open_max_trials}")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_max_trials = half_open_max_trials
        self._clock = clock
        self._on_transition = on_transition
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._half_open_trials = 0
        self._lock = make_lock("net.circuit_breaker")

    # -- state inspection ----------------------------------------------------

    @property
    def state(self) -> BreakerState:
        """Current state; an OPEN breaker past its timeout reads HALF_OPEN."""
        with self._lock:
            self._tick()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def _tick(self) -> None:
        """OPEN → HALF_OPEN once the reset timeout has elapsed."""
        if (self._state is BreakerState.OPEN
                and self._clock() - self._opened_at >= self.reset_timeout):
            self._transition(BreakerState.HALF_OPEN)
            self._half_open_trials = 0

    def _transition(self, to: BreakerState) -> None:
        came_from, self._state = self._state, to
        if came_from is not to and self._on_transition is not None:
            self._on_transition(came_from, to)

    # -- the attempt gate ----------------------------------------------------

    def try_acquire(self) -> bool:
        """May an attempt proceed right now?

        CLOSED always admits; OPEN refuses (transitioning to HALF_OPEN
        first when due); HALF_OPEN admits while trial slots remain.
        """
        with self._lock:
            self._tick()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                return False
            if self._half_open_trials >= self.half_open_max_trials:
                return False
            self._half_open_trials += 1
            return True

    # -- outcome reporting ---------------------------------------------------

    def record_success(self) -> None:
        """A (trial) attempt succeeded: close from any state."""
        with self._lock:
            self._consecutive_failures = 0
            self._transition(BreakerState.CLOSED)

    def record_failure(self) -> None:
        """An attempt failed: count towards opening, or re-open a trial."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state is BreakerState.CLOSED:
                if self._consecutive_failures >= self.failure_threshold:
                    self._transition(BreakerState.OPEN)
                    self._opened_at = self._clock()
            else:
                # A failure while OPEN (last-resort attempt) or HALF_OPEN
                # (failed trial) re-opens and restarts the timer.
                self._transition(BreakerState.OPEN)
                self._opened_at = self._clock()


class RetryBudget:
    """A token bucket bounding retries across a whole client process.

    The bucket starts full at ``max_tokens``.  Every retry (failover
    attempt after the first, or hedge) must :meth:`try_spend` one token;
    every success :meth:`record_success`-earns ``earn_per_success``
    tokens back, capped at ``max_tokens``.  First attempts are never
    charged — the budget bounds *amplification*, not traffic.
    """

    def __init__(self, max_tokens: float = 10.0,
                 earn_per_success: float = 0.1,
                 initial: Optional[float] = None) -> None:
        if max_tokens < 1:
            raise ValueError(f"max_tokens must be >= 1: {max_tokens}")
        if earn_per_success < 0:
            raise ValueError(
                f"earn_per_success must be >= 0: {earn_per_success}")
        self.max_tokens = float(max_tokens)
        self.earn_per_success = float(earn_per_success)
        self._tokens = self.max_tokens if initial is None else float(initial)
        self.spent = 0
        self.denied = 0
        self._lock = make_lock("net.retry_budget")

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def try_spend(self) -> bool:
        """Charge one token for a retry; ``False`` means *don't retry*."""
        with self._lock:
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                self.spent += 1
                return True
            self.denied += 1
            return False

    def record_success(self) -> None:
        """Earn tokens back on success, up to the cap."""
        with self._lock:
            self._tokens = min(self.max_tokens,
                               self._tokens + self.earn_per_success)


@dataclass(frozen=True)
class HedgePolicy:
    """Speculative re-execution of stragglers.

    After ``delay`` seconds without a first answer, fire the query at
    the next available replica; first answer wins, the loser is
    abandoned (its health bookkeeping still lands when it resolves).
    At most ``max_hedges`` extra attempts per request.
    """

    delay: float
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"hedge delay must be >= 0: {self.delay}")
        if self.max_hedges < 1:
            raise ValueError(f"max_hedges must be >= 1: {self.max_hedges}")


@dataclass(frozen=True)
class ResilienceConfig:
    """Tunables for one :class:`~repro.net.RemoteReplicaSet`.

    ``breaker_failure_threshold`` of ``None`` reuses the replica set's
    ``health_threshold`` so breaker-open and unhealthy coincide by
    default.  ``hedge`` of ``None`` disables hedging (the sequential
    failover path).  ``probe_interval`` of ``None`` disables the
    opportunistic background recovery probe; recovery then rides on the
    breaker's half-open trials alone.
    """

    breaker_enabled: bool = True
    breaker_failure_threshold: Optional[int] = None
    breaker_reset_timeout: float = 5.0
    hedge: Optional[HedgePolicy] = None
    retry_max_tokens: float = 10.0
    retry_earn_per_success: float = 0.1
    probe_interval: Optional[float] = None
    probe_timeout: float = 1.0
