"""I/O accounting for the simulated disk.

The paper evaluates disk-based indexes; in a pure-Python reproduction, wall
time alone under-reports the asymptotic story (Python overhead dwarfs a
simulated seek).  Every page access therefore flows through an
:class:`IOStats` so benchmarks can report logical page reads/writes alongside
wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IOStats:
    """Mutable counters for logical page-level I/O.

    ``physical_reads`` count pages actually fetched from the backing store;
    ``cache_hits`` count pages served by the buffer pool.  The sum of the two
    equals the number of logical page requests.

    The durability layer adds three counters: ``fsyncs`` (how many times a
    log or page file was forced to stable storage — the quantity that bounds
    how much work a crash can lose), ``wal_appends`` and ``wal_bytes``
    (write-ahead-log traffic, the mutation path's durability overhead).
    """

    physical_reads: int = 0
    physical_writes: int = 0
    cache_hits: int = 0
    fsyncs: int = 0
    wal_appends: int = 0
    wal_bytes: int = 0

    def record_read(self, *, hit: bool) -> None:
        """Record one logical page read, served by cache iff ``hit``."""
        if hit:
            self.cache_hits += 1
        else:
            self.physical_reads += 1

    def record_write(self) -> None:
        """Record one physical page write."""
        self.physical_writes += 1

    def record_fsync(self) -> None:
        """Record one fsync-to-stable-storage point."""
        self.fsyncs += 1

    def record_wal_append(self, num_bytes: int) -> None:
        """Record one WAL record append of ``num_bytes`` on-disk bytes."""
        self.wal_appends += 1
        self.wal_bytes += num_bytes

    @property
    def logical_reads(self) -> int:
        """Total page read requests, whether or not they hit the cache."""
        return self.physical_reads + self.cache_hits

    def reset(self) -> None:
        """Zero all counters (used between benchmark phases)."""
        self.physical_reads = 0
        self.physical_writes = 0
        self.cache_hits = 0
        self.fsyncs = 0
        self.wal_appends = 0
        self.wal_bytes = 0

    def snapshot(self) -> "IOSnapshot":
        """An immutable copy of the current counters."""
        return IOSnapshot(self.physical_reads, self.physical_writes,
                          self.cache_hits, self.fsyncs, self.wal_appends,
                          self.wal_bytes)


@dataclass(frozen=True)
class IOSnapshot:
    """Frozen view of :class:`IOStats` counters, for before/after deltas."""

    physical_reads: int = 0
    physical_writes: int = 0
    cache_hits: int = 0
    fsyncs: int = 0
    wal_appends: int = 0
    wal_bytes: int = 0

    @property
    def logical_reads(self) -> int:
        return self.physical_reads + self.cache_hits

    def delta(self, later: "IOSnapshot") -> "IOSnapshot":
        """Counters accumulated between ``self`` and a ``later`` snapshot."""
        return IOSnapshot(
            later.physical_reads - self.physical_reads,
            later.physical_writes - self.physical_writes,
            later.cache_hits - self.cache_hits,
            later.fsyncs - self.fsyncs,
            later.wal_appends - self.wal_appends,
            later.wal_bytes - self.wal_bytes,
        )


@dataclass
class SearchStats:
    """Algorithm-level counters shared by DESKS and the baselines.

    These are the quantities the paper's analysis talks about: how many
    regions / tree nodes were expanded, how many POIs were touched, how many
    distance computations ran.  Each search method fills the fields it has.
    """

    regions_examined: int = 0
    subregions_examined: int = 0
    nodes_examined: int = 0
    pois_examined: int = 0
    distance_computations: int = 0
    candidates_verified: int = 0
    io: IOStats = field(default_factory=IOStats)

    def reset(self) -> None:
        """Zero all counters, including the embedded I/O stats."""
        self.regions_examined = 0
        self.subregions_examined = 0
        self.nodes_examined = 0
        self.pois_examined = 0
        self.distance_computations = 0
        self.candidates_verified = 0
        self.io.reset()
