"""Compact binary encodings for index payloads.

Inverted lists dominate the on-disk footprint of every index in the paper, so
they are stored as delta-encoded varints — the standard IR trick: sorted id
lists become small gaps, and small gaps become 1-2 byte varints.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple


def encode_varint(value: int) -> bytes:
    """LEB128-encode a non-negative integer."""
    if value < 0:
        raise ValueError(f"varints encode non-negative integers, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode one varint; returns ``(value, next_offset)``."""
    value = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7
        if shift > 63:
            raise ValueError("varint too long")


def encode_sorted_ids(ids: Sequence[int]) -> bytes:
    """Delta+varint encode a non-decreasing id sequence."""
    out = bytearray(encode_varint(len(ids)))
    prev = 0
    for i, value in enumerate(ids):
        if i and value < prev:
            raise ValueError("encode_sorted_ids requires a sorted sequence")
        out += encode_varint(value - prev if i else value)
        prev = value
    return bytes(out)


def decode_sorted_ids(data: bytes, offset: int = 0) -> Tuple[List[int], int]:
    """Inverse of :func:`encode_sorted_ids`; returns ``(ids, next_offset)``."""
    count, pos = decode_varint(data, offset)
    ids: List[int] = []
    prev = 0
    for i in range(count):
        gap, pos = decode_varint(data, pos)
        prev = gap if i == 0 else prev + gap
        ids.append(prev)
    return ids, pos


def encode_uint_list(values: Sequence[int]) -> bytes:
    """Varint encode an arbitrary (unsorted) non-negative int sequence."""
    out = bytearray(encode_varint(len(values)))
    for value in values:
        out += encode_varint(value)
    return bytes(out)


def decode_uint_list(data: bytes, offset: int = 0) -> Tuple[List[int], int]:
    """Inverse of :func:`encode_uint_list`."""
    count, pos = decode_varint(data, offset)
    values: List[int] = []
    for _ in range(count):
        value, pos = decode_varint(data, pos)
        values.append(value)
    return values, pos


def encode_text(text: str) -> bytes:
    """UTF-8 with a varint *byte* (not character) length prefix.

    The distinction matters for non-ASCII keywords: ``len("café")`` is 4
    but its UTF-8 form is 5 bytes, and a decoder that trusts the character
    count walks off the middle of a multi-byte sequence.
    """
    blob = text.encode("utf-8")
    return encode_varint(len(blob)) + blob


def decode_text(data: bytes, offset: int = 0) -> Tuple[str, int]:
    """Inverse of :func:`encode_text`; returns ``(text, next_offset)``."""
    length, pos = decode_varint(data, offset)
    end = pos + length
    if end > len(data):
        raise ValueError("truncated text payload")
    return data[pos:end].decode("utf-8"), end


def encode_keywords(keywords: Sequence[str]) -> bytes:
    """A keyword set as count + length-prefixed UTF-8 strings.

    Keywords are sorted so equal sets encode to equal bytes (the WAL's
    replay-determinism relies on this); the empty set encodes to the
    single byte ``0x00``.
    """
    ordered = sorted(keywords)
    out = bytearray(encode_varint(len(ordered)))
    for keyword in ordered:
        out += encode_text(keyword)
    return bytes(out)


def decode_keywords(data: bytes, offset: int = 0) -> Tuple[List[str], int]:
    """Inverse of :func:`encode_keywords`."""
    count, pos = decode_varint(data, offset)
    keywords: List[str] = []
    for _ in range(count):
        keyword, pos = decode_text(data, pos)
        keywords.append(keyword)
    return keywords, pos


def encode_floats(values: Sequence[float]) -> bytes:
    """Fixed-width little-endian float64 sequence with a varint count."""
    return encode_varint(len(values)) + struct.pack(
        f"<{len(values)}d", *values)


def decode_floats(data: bytes, offset: int = 0) -> Tuple[List[float], int]:
    """Inverse of :func:`encode_floats`."""
    count, pos = decode_varint(data, offset)
    end = pos + 8 * count
    if end > len(data):
        raise ValueError("truncated float payload")
    return list(struct.unpack(f"<{count}d", data[pos:end])), end
