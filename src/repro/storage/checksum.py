"""CRC32C (Castagnoli) — the checksum guarding pages and WAL records.

CRC32C is the standard storage-engine choice (ext4, Btrfs, iSCSI,
LevelDB/RocksDB WALs) because its polynomial catches the error patterns
disks actually produce — short bursts and single flipped bits — and
hardware implements it.  Pure Python has no ``crc32c`` in the stdlib
(``zlib.crc32`` is the IEEE polynomial), so this module carries the
classic table-driven implementation; one table lookup per byte is plenty
for 4 KiB pages at reproduction scale.
"""

from __future__ import annotations

from typing import List

_POLY = 0x82F63B78  # Castagnoli, reflected


def _build_table() -> List[int]:
    table = []
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ _POLY if crc & 1 else crc >> 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32c(data: bytes, crc: int = 0) -> int:
    """CRC32C of ``data``; pass a previous value to checksum a stream."""
    crc ^= 0xFFFFFFFF
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF
