"""Page-granular storage backends.

A *page store* holds fixed-size pages addressed by integer id.  Two
implementations share the interface:

* :class:`InMemoryPageStore` — a list of bytearrays; the default for tests
  and for "if we have large memory" mode in the paper.
* :class:`FilePageStore` — a real file on disk, one page per ``PAGE_SIZE``
  slot; the "disk-based structure" mode.

Both report physical reads/writes to an :class:`~repro.storage.stats.IOStats`
so higher layers can account I/O identically regardless of backend.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .checksum import crc32c
from .stats import IOStats

#: Default page size, matching the common 4 KiB database page.
PAGE_SIZE = 4096


class PageCorruptionError(RuntimeError):
    """A page failed frame verification (checksum / torn write / magic).

    Carries enough context for the serving layer to report a failure cause
    and for the cluster layer to quarantine the shard that produced it.
    """

    def __init__(self, page_id: int, reason: str,
                 path: Optional[str] = None) -> None:
        self.page_id = page_id
        self.reason = reason
        self.path = path
        where = f" in {path}" if path else ""
        super().__init__(f"page {page_id}{where}: {reason}")


class PageStore:
    """Abstract fixed-size page store."""

    def __init__(self, page_size: int = PAGE_SIZE,
                 stats: Optional[IOStats] = None) -> None:
        if page_size <= 0:
            raise ValueError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()

    # -- interface ----------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of allocated pages."""
        raise NotImplementedError

    def allocate(self) -> int:
        """Allocate a fresh zeroed page and return its id."""
        raise NotImplementedError

    def read_page(self, page_id: int) -> bytes:
        """Return the page's ``page_size`` bytes (counts a physical read)."""
        raise NotImplementedError

    def write_page(self, page_id: int, data: bytes) -> None:
        """Overwrite a page (counts a physical write).

        ``data`` shorter than the page is zero-padded; longer is an error.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further access is an error."""

    # -- helpers -------------------------------------------------------------

    def _pad(self, data: bytes) -> bytes:
        if len(data) > self.page_size:
            raise ValueError(
                f"page payload of {len(data)} bytes exceeds page size "
                f"{self.page_size}")
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        return data

    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.num_pages:
            raise IndexError(
                f"page id {page_id} out of range [0, {self.num_pages})")

    def __enter__(self) -> "PageStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class InMemoryPageStore(PageStore):
    """Pages held in Python memory, with the same accounting as a file."""

    def __init__(self, page_size: int = PAGE_SIZE,
                 stats: Optional[IOStats] = None) -> None:
        super().__init__(page_size, stats)
        self._pages: List[bytes] = []

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def allocate(self) -> int:
        self._pages.append(bytes(self.page_size))
        return len(self._pages) - 1

    def read_page(self, page_id: int) -> bytes:
        self._check_page_id(page_id)
        self.stats.record_read(hit=False)
        return self._pages[page_id]

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check_page_id(page_id)
        self._pages[page_id] = self._pad(data)
        self.stats.record_write()

    def close(self) -> None:
        self._pages = []


class FilePageStore(PageStore):
    """Pages stored in a real file, one ``page_size`` slot per page."""

    def __init__(self, path: str, page_size: int = PAGE_SIZE,
                 stats: Optional[IOStats] = None) -> None:
        super().__init__(page_size, stats)
        self.path = path
        # "x+b" would refuse existing files; benchmarks recreate stores per
        # run, so truncate-open keeps them self-cleaning.
        self._file = open(path, "w+b")
        self._num_pages = 0

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def allocate(self) -> int:
        page_id = self._num_pages
        self._file.seek(page_id * self.page_size)
        self._file.write(bytes(self.page_size))
        self._num_pages += 1
        return page_id

    def read_page(self, page_id: int) -> bytes:
        self._check_page_id(page_id)
        self.stats.record_read(hit=False)
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:  # pragma: no cover - torn file
            data = data + b"\x00" * (self.page_size - len(data))
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check_page_id(page_id)
        self._file.seek(page_id * self.page_size)
        self._file.write(self._pad(data))
        self.stats.record_write()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def unlink(self) -> None:
        """Close and remove the backing file."""
        self.close()
        if os.path.exists(self.path):
            os.unlink(self.path)


# -- checksummed page frames ---------------------------------------------------

#: Frame header: magic (2) + epoch (4) + reserved (2) + CRC32C (4).  The
#: CRC is last so it can cover every other frame byte, trailing stamp
#: included — a flip anywhere in the frame is caught by exactly one check.
_FRAME_MAGIC = b"\xc5\xf0"
_FRAME_HEADER = struct.Struct("<2sI2sI")
#: Trailing epoch stamp, re-written last; a mismatch against the header
#: epoch means the page write was torn part-way through.
_FRAME_STAMP = struct.Struct("<I")
FRAME_OVERHEAD = _FRAME_HEADER.size + _FRAME_STAMP.size


@dataclass
class ScrubReport:
    """Outcome of a full-store verification pass."""

    pages_checked: int = 0
    corrupt: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.corrupt

    def merge(self, other: "ScrubReport") -> None:
        """Fold another store's report into this one."""
        self.pages_checked += other.pages_checked
        self.corrupt.extend(other.corrupt)

    def summary(self) -> str:
        state = ("clean" if self.clean
                 else f"{len(self.corrupt)} corrupt page(s)")
        return f"scrubbed {self.pages_checked} page(s): {state}"


class ChecksummedPageStore(PageStore):
    """CRC32C-framed pages over an inner store, with torn-write detection.

    Each physical page of the inner store holds one *frame*::

        [magic 2][epoch 4][crc32c 4][reserved 2][payload][epoch stamp 4]

    The logical page exposed to clients is the payload — ``page_size`` here
    is the inner store's minus :data:`FRAME_OVERHEAD`, so record files and
    buffer pools layer on top unchanged.  ``epoch`` is a store-wide
    monotonic write counter written at both ends of the frame; a crash that
    tears a page write leaves the two copies disagreeing, which
    :meth:`read_page` reports as a torn write even when the bit pattern
    happens to checksum correctly on one side.  The CRC covers the epoch
    and the payload, so any flipped bit in either is caught.

    A page that was allocated but never written reads back as all zero
    bytes in the inner store and is served as a zeroed logical page — the
    same fresh-page semantics as the raw stores.
    """

    def __init__(self, inner: PageStore) -> None:
        if inner.page_size <= FRAME_OVERHEAD:
            raise ValueError(
                f"inner page size {inner.page_size} cannot hold a "
                f"{FRAME_OVERHEAD}-byte frame")
        super().__init__(inner.page_size - FRAME_OVERHEAD, inner.stats)
        self.inner = inner
        self._epoch = 0

    @property
    def num_pages(self) -> int:
        return self.inner.num_pages

    def allocate(self) -> int:
        return self.inner.allocate()

    def write_page(self, page_id: int, data: bytes) -> None:
        payload = self._pad(data)
        self._epoch += 1
        epoch = self._epoch & 0xFFFFFFFF
        prefix = _FRAME_MAGIC + struct.pack("<I", epoch) + b"\x00\x00"
        stamp = _FRAME_STAMP.pack(epoch)
        crc = crc32c(prefix + payload + stamp)
        self.inner.write_page(
            page_id, prefix + struct.pack("<I", crc) + payload + stamp)

    def read_page(self, page_id: int) -> bytes:
        raw = self.inner.read_page(page_id)
        reason, payload = self._verify_raw(page_id, raw)
        if reason is not None:
            raise PageCorruptionError(page_id, reason, self._path())
        return payload

    def close(self) -> None:
        self.inner.close()

    # -- verification --------------------------------------------------------

    def verify_page(self, page_id: int) -> Optional[str]:
        """The corruption reason for one page, or ``None`` when intact."""
        reason, _ = self._verify_raw(page_id, self.inner.read_page(page_id))
        return reason

    def scrub(self) -> ScrubReport:
        """Verify every allocated page; never raises."""
        report = ScrubReport()
        for page_id in range(self.num_pages):
            report.pages_checked += 1
            reason = self.verify_page(page_id)
            if reason is not None:
                report.corrupt.append((page_id, reason))
        return report

    def _verify_raw(self, page_id: int,
                    raw: bytes) -> Tuple[Optional[str], bytes]:
        if not any(raw):
            return None, bytes(self.page_size)  # allocated, never written
        magic, epoch, reserved, crc = _FRAME_HEADER.unpack_from(raw)
        if magic != _FRAME_MAGIC:
            return f"bad frame magic {magic!r}", b""
        (stamp,) = _FRAME_STAMP.unpack_from(raw, len(raw) - _FRAME_STAMP.size)
        if stamp != epoch:
            return (f"torn write (header epoch {epoch}, "
                    f"trailing stamp {stamp})"), b""
        payload = raw[_FRAME_HEADER.size:len(raw) - _FRAME_STAMP.size]
        covered = (magic + struct.pack("<I", epoch) + reserved
                   + payload + raw[len(raw) - _FRAME_STAMP.size:])
        if crc32c(covered) != crc:
            return f"checksum mismatch at epoch {epoch}", b""
        return None, payload

    def _path(self) -> Optional[str]:
        path = getattr(self.inner, "path", None)
        return path if isinstance(path, str) else None
