"""Page-granular storage backends.

A *page store* holds fixed-size pages addressed by integer id.  Two
implementations share the interface:

* :class:`InMemoryPageStore` — a list of bytearrays; the default for tests
  and for "if we have large memory" mode in the paper.
* :class:`FilePageStore` — a real file on disk, one page per ``PAGE_SIZE``
  slot; the "disk-based structure" mode.

Both report physical reads/writes to an :class:`~repro.storage.stats.IOStats`
so higher layers can account I/O identically regardless of backend.
"""

from __future__ import annotations

import os
from typing import Optional

from .stats import IOStats

#: Default page size, matching the common 4 KiB database page.
PAGE_SIZE = 4096


class PageStore:
    """Abstract fixed-size page store."""

    def __init__(self, page_size: int = PAGE_SIZE,
                 stats: Optional[IOStats] = None) -> None:
        if page_size <= 0:
            raise ValueError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self.stats = stats if stats is not None else IOStats()

    # -- interface ----------------------------------------------------------

    @property
    def num_pages(self) -> int:
        """Number of allocated pages."""
        raise NotImplementedError

    def allocate(self) -> int:
        """Allocate a fresh zeroed page and return its id."""
        raise NotImplementedError

    def read_page(self, page_id: int) -> bytes:
        """Return the page's ``page_size`` bytes (counts a physical read)."""
        raise NotImplementedError

    def write_page(self, page_id: int, data: bytes) -> None:
        """Overwrite a page (counts a physical write).

        ``data`` shorter than the page is zero-padded; longer is an error.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; further access is an error."""

    # -- helpers -------------------------------------------------------------

    def _pad(self, data: bytes) -> bytes:
        if len(data) > self.page_size:
            raise ValueError(
                f"page payload of {len(data)} bytes exceeds page size "
                f"{self.page_size}")
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        return data

    def _check_page_id(self, page_id: int) -> None:
        if not 0 <= page_id < self.num_pages:
            raise IndexError(
                f"page id {page_id} out of range [0, {self.num_pages})")

    def __enter__(self) -> "PageStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InMemoryPageStore(PageStore):
    """Pages held in Python memory, with the same accounting as a file."""

    def __init__(self, page_size: int = PAGE_SIZE,
                 stats: Optional[IOStats] = None) -> None:
        super().__init__(page_size, stats)
        self._pages: list = []

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    def allocate(self) -> int:
        self._pages.append(bytes(self.page_size))
        return len(self._pages) - 1

    def read_page(self, page_id: int) -> bytes:
        self._check_page_id(page_id)
        self.stats.record_read(hit=False)
        return self._pages[page_id]

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check_page_id(page_id)
        self._pages[page_id] = self._pad(data)
        self.stats.record_write()

    def close(self) -> None:
        self._pages = []


class FilePageStore(PageStore):
    """Pages stored in a real file, one ``page_size`` slot per page."""

    def __init__(self, path: str, page_size: int = PAGE_SIZE,
                 stats: Optional[IOStats] = None) -> None:
        super().__init__(page_size, stats)
        self.path = path
        # "x+b" would refuse existing files; benchmarks recreate stores per
        # run, so truncate-open keeps them self-cleaning.
        self._file = open(path, "w+b")
        self._num_pages = 0

    @property
    def num_pages(self) -> int:
        return self._num_pages

    def allocate(self) -> int:
        page_id = self._num_pages
        self._file.seek(page_id * self.page_size)
        self._file.write(bytes(self.page_size))
        self._num_pages += 1
        return page_id

    def read_page(self, page_id: int) -> bytes:
        self._check_page_id(page_id)
        self.stats.record_read(hit=False)
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        if len(data) < self.page_size:  # pragma: no cover - torn file
            data = data + b"\x00" * (self.page_size - len(data))
        return data

    def write_page(self, page_id: int, data: bytes) -> None:
        self._check_page_id(page_id)
        self._file.seek(page_id * self.page_size)
        self._file.write(self._pad(data))
        self.stats.record_write()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def unlink(self) -> None:
        """Close and remove the backing file."""
        self.close()
        if os.path.exists(self.path):
            os.unlink(self.path)
