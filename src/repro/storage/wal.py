"""A segmented write-ahead log with CRC'd records and failpoints.

The durability contract of :mod:`repro.durability` rests on this module:
every mutation is appended here *before* it touches in-memory state, so a
crash at any instant loses at most the tail of the log — and the tail is
exactly recoverable, because each record carries a CRC32C and replay stops
at the first record that fails it (ARIES's "analysis stops at the torn
tail" in miniature).

Records are opaque byte payloads with a caller-chosen one-byte type::

    [type 1][length 4][crc32 4][payload ...]

Segments rotate at ``segment_bytes``; a checkpoint (caller has made all
logged state durable elsewhere) deletes every segment and starts a fresh
one.  In production, appends go through a normal buffered file and
``sync`` flushes then fsyncs — durability is only ever claimed at sync
points, so buffering loses nothing and keeps the per-append cost to a
memcpy.  When a failpoint is installed the file is opened unbuffered
instead, so Python never holds record bytes a simulated crash would
unrealistically lose.  ``fsync`` points are counted in
:class:`~repro.storage.stats.IOStats` (``sync="always"`` forces
per-append, ``"batch"`` every ``sync_interval`` appends, ``"checkpoint"``
only at rotation/checkpoint/close).

**Failpoints** make crash testing deterministic: a callable invoked at
named stages (``append.header``, ``append.torn``, ``append.complete``,
``sync``, ``rotate``, ``checkpoint.before``, ``checkpoint.after``) may
raise :class:`SimulatedCrash` mid-operation; whatever bytes were already
written stay on disk, exactly as a real crash would leave them.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import BinaryIO, Callable, Iterator, List, Optional, Tuple

from ..trace.spans import current_tracer
from .stats import IOStats

#: Record CRC.  Page frames use CRC32C (:mod:`repro.storage.checksum`);
#: WAL records sit on the per-mutation hot path, so they use the
#: C-accelerated stdlib CRC-32 instead — same 32-bit error detection,
#: ~50x cheaper per record in pure-Python terms.
_record_crc = zlib.crc32

_RECORD_HEADER = struct.Struct("<BII")
#: Caller-visible default record type (repro.durability uses it for ops).
RECORD_OP = 1

#: Sanity bound on record length; anything larger is treated as a torn
#: header rather than an attempt to allocate garbage gigabytes.
_MAX_RECORD = 1 << 26

SYNC_POLICIES = ("always", "batch", "checkpoint")


class SimulatedCrash(RuntimeError):
    """Raised by a failpoint to model a process crash at that instant."""


class WalCorruptionError(RuntimeError):
    """A WAL segment failed verification *before* the final tail."""


FailpointFn = Callable[[str], None]


class WriteAheadLog:
    """Append-only, CRC-verified, segment-rotated redo log."""

    def __init__(self, directory: str, *,
                 segment_bytes: int = 256 * 1024,
                 sync: str = "batch",
                 sync_interval: int = 32,
                 stats: Optional[IOStats] = None,
                 failpoint: Optional[FailpointFn] = None) -> None:
        if sync not in SYNC_POLICIES:
            raise ValueError(
                f"sync must be one of {SYNC_POLICIES}, got {sync!r}")
        if segment_bytes <= _RECORD_HEADER.size:
            raise ValueError(
                f"segment_bytes too small: {segment_bytes}")
        if sync_interval < 1:
            raise ValueError(f"sync_interval must be >= 1: {sync_interval}")
        self.directory = directory
        self.segment_bytes = segment_bytes
        self.sync_policy = sync
        self.sync_interval = sync_interval
        self.stats = stats if stats is not None else IOStats()
        self._failpoint = failpoint
        self._unsynced = 0
        self.appended = 0
        os.makedirs(directory, exist_ok=True)
        existing = self.segments()
        if existing:
            self._segment_no = _segment_number(existing[-1])
            self._repair_tail(existing[-1])
        else:
            self._segment_no = 0
        self._file = self._open_segment(self._segment_no)

    # -- paths ---------------------------------------------------------------

    def segments(self) -> List[str]:
        """Current segment file paths, oldest first."""
        return _segment_paths(self.directory)

    def _segment_path(self, number: int) -> str:
        return os.path.join(self.directory, f"segment-{number:08d}.wal")

    def _open_segment(self, number: int) -> BinaryIO:
        # Unbuffered only under a failpoint: crash simulation must see
        # exactly the bytes each write() emitted, nothing held by Python.
        buffering = 0 if self._failpoint is not None else -1
        path = self._segment_path(number)
        creating = not os.path.exists(path)
        handle = open(path, "ab", buffering=buffering)
        if creating:
            # The file's very existence must survive power loss, or a
            # checkpoint could leave the log with no open-for-append tail.
            _fsync_dir(self.directory)
        return handle

    # -- appending -----------------------------------------------------------

    def append(self, payload: bytes, rectype: int = RECORD_OP) -> int:
        """Append one record; returns the record's ordinal in this log's
        lifetime.  Durable once the containing segment is synced."""
        if not 0 < rectype < 256:
            raise ValueError(f"rectype must fit one byte: {rectype}")
        tracer = current_tracer()
        tick = time.perf_counter() if tracer is not None else 0.0
        self._fire("append.header")
        crc = _record_crc(payload, rectype)
        header = _RECORD_HEADER.pack(rectype, len(payload), crc)
        if self._failpoint is not None:
            # Two writes on purpose: a crash between them leaves a torn
            # tail, the case recovery must (and chaos tests do) exercise.
            self._file.write(header + payload[:len(payload) // 2])
            self._fire("append.torn")
            self._file.write(payload[len(payload) // 2:])
        else:
            # Production path: one buffered write; durability is claimed
            # only at sync points, and recovery handles whatever prefix a
            # real crash leaves behind.
            self._file.write(header + payload)
        self.stats.record_wal_append(_RECORD_HEADER.size + len(payload))
        self.appended += 1
        self._unsynced += 1
        self._fire("append.complete")
        if self.sync_policy == "always" or (
                self.sync_policy == "batch"
                and self._unsynced >= self.sync_interval):
            self.sync()
        if self._file.tell() >= self.segment_bytes:
            self._rotate()
        if tracer is not None:
            tracer.record(
                "wal.append", seconds=time.perf_counter() - tick,
                bytes=_RECORD_HEADER.size + len(payload))
        return self.appended - 1

    def sync(self) -> None:
        """Force appended records to stable storage (counted in stats)."""
        if self._unsynced == 0:
            return
        tracer = current_tracer()
        tick = time.perf_counter() if tracer is not None else 0.0
        self._fire("sync")
        self._file.flush()
        os.fsync(self._file.fileno())
        self.stats.record_fsync()
        records = self._unsynced
        self._unsynced = 0
        if tracer is not None:
            tracer.record("wal.fsync",
                          seconds=time.perf_counter() - tick,
                          records=records)

    def _rotate(self) -> None:
        self.sync()
        self._fire("rotate")
        self._file.close()
        self._segment_no += 1
        self._file = self._open_segment(self._segment_no)

    def checkpoint(self) -> None:
        """Drop every segment: the caller has snapshotted all logged state.

        Crash ordering matters — the caller must have made its snapshot
        durable *before* calling this, and recovery must tolerate a crash
        between the two (repro.durability uses op sequence numbers).
        """
        self._fire("checkpoint.before")
        self.sync()
        self._file.close()
        for path in self.segments():
            os.unlink(path)
        # Unlinks must be durable before new appends: a power loss that
        # resurrected a pre-checkpoint segment would replay absorbed ops
        # ahead of newer ones.
        _fsync_dir(self.directory)
        self._segment_no += 1
        self._file = self._open_segment(self._segment_no)
        self._fire("checkpoint.after")

    # -- reading -------------------------------------------------------------

    def replay(self) -> Iterator[Tuple[int, bytes]]:
        """Yield ``(rectype, payload)`` up to the last consistent record.

        A torn or corrupt record ends the iteration cleanly — everything
        before it was written (and CRC-verified) in full, which is the
        strongest statement a redo log can make after a crash.
        """
        for path in self.segments():
            for _, rectype, payload in _scan_segment(path):
                yield rectype, payload

    def scrub(self) -> "WalScrubReport":
        """Verify every segment; reports where (if anywhere) the log tears."""
        return _scrub_segments(self.segments())

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        if not self._file.closed:
            self.sync()
            self._file.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _fire(self, stage: str) -> None:
        if self._failpoint is not None:
            self._failpoint(stage)

    def _repair_tail(self, path: str) -> None:
        """Truncate the final segment's torn tail so appends can resume."""
        _, tail = _scan_segment_extent(path)
        if tail is not None:
            with open(path, "r+b") as handle:
                handle.truncate(tail)


class WalScrubReport:
    """Outcome of :meth:`WriteAheadLog.scrub`."""

    def __init__(self) -> None:
        self.records = 0
        self.torn_at: Optional[Tuple[str, int]] = None
        self.unreachable_segments = 0

    @property
    def clean(self) -> bool:
        return self.torn_at is None

    def summary(self) -> str:
        if self.clean:
            return f"wal: {self.records} record(s), clean"
        path, offset = self.torn_at
        return (f"wal: {self.records} record(s), torn at "
                f"{os.path.basename(path)}:{offset} "
                f"({self.unreachable_segments} segment(s) unreachable)")


def wal_scrub(directory: str) -> "WalScrubReport":
    """Verify a WAL directory **without touching it**.

    Unlike ``WriteAheadLog(...).scrub()``, this never repairs a torn
    tail, opens nothing for append, and creates no files — so an offline
    integrity check (the CLI ``scrub`` command) can report a torn final
    record instead of silently truncating the evidence.  A missing
    directory scrubs as an empty, clean log.
    """
    if not os.path.isdir(directory):
        return WalScrubReport()
    return _scrub_segments(_segment_paths(directory))


def _scrub_segments(segments: List[str]) -> "WalScrubReport":
    report = WalScrubReport()
    for index, path in enumerate(segments):
        good, tail = _scan_segment_extent(path)
        report.records += good
        if tail is not None:
            report.torn_at = (path, tail)
            # Bytes in later segments are unreachable by replay.
            report.unreachable_segments = len(segments) - index - 1
            break
    return report


def _segment_paths(directory: str) -> List[str]:
    names = sorted(n for n in os.listdir(directory)
                   if n.startswith("segment-") and n.endswith(".wal"))
    return [os.path.join(directory, n) for n in names]


def _fsync_dir(path: str) -> None:
    """Make renames/unlinks under ``path`` durable (no-op where
    directories cannot be opened, e.g. Windows)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _scan_segment(path: str) -> Iterator[Tuple[int, int, bytes]]:
    """Yield ``(offset, rectype, payload)`` for each valid record."""
    with open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    while offset + _RECORD_HEADER.size <= len(data):
        rectype, length, crc = _RECORD_HEADER.unpack_from(data, offset)
        if rectype == 0 or length > _MAX_RECORD:
            return
        end = offset + _RECORD_HEADER.size + length
        if end > len(data):
            return
        payload = data[offset + _RECORD_HEADER.size:end]
        if _record_crc(payload, rectype) != crc:
            return
        yield offset, rectype, payload
        offset = end


def _scan_segment_extent(path: str) -> Tuple[int, Optional[int]]:
    """``(valid_records, torn_offset)``; torn_offset None when clean."""
    last_end = 0
    count = 0
    for offset, _, payload in _scan_segment(path):
        count += 1
        last_end = offset + _RECORD_HEADER.size + len(payload)
    return count, None if last_end == os.path.getsize(path) else last_end


def _segment_number(path: str) -> int:
    name = os.path.basename(path)
    return int(name[len("segment-"):-len(".wal")])
