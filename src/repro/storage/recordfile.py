"""Variable-length records on top of the page store.

Index payloads (inverted-list segments, serialized tree nodes) are arbitrary
byte blobs; :class:`RecordFile` packs them densely across pages and hands
back a :class:`RecordPointer`.  A read touches exactly the pages the record
spans — reproducing the paper's property that reading a short posting-list
slice costs few I/Os while a long one costs proportionally more.
"""

from __future__ import annotations

from dataclasses import dataclass

from .buffer import BufferPool
from .pages import PageStore
from .stats import IOStats


@dataclass(frozen=True)
class RecordPointer:
    """Location of a record: absolute byte offset and length."""

    offset: int
    length: int

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length < 0:
            raise ValueError(f"invalid record pointer {self!r}")


class RecordFile:
    """Append-only byte-blob store with page-accounted reads."""

    def __init__(self, store: PageStore, buffer_capacity: int = 128) -> None:
        self._pool = BufferPool(store, capacity=buffer_capacity)
        self._append_offset = store.num_pages * store.page_size

    @property
    def page_size(self) -> int:
        return self._pool.page_size

    @property
    def stats(self) -> IOStats:
        """I/O stats of the underlying store."""
        return self._pool.stats

    @property
    def page_store(self) -> PageStore:
        """The page store beneath the buffer pool (for scrub/injection)."""
        return self._pool.store

    @property
    def size_in_bytes(self) -> int:
        """Total bytes appended so far."""
        return self._append_offset

    @property
    def size_in_pages(self) -> int:
        """Total pages allocated so far."""
        return self._pool.num_pages

    def append(self, payload: bytes) -> RecordPointer:
        """Append a record, allocating pages as needed."""
        pointer = RecordPointer(self._append_offset, len(payload))
        page_size = self.page_size
        cursor = 0
        offset = self._append_offset
        while cursor < len(payload):
            page_id = offset // page_size
            in_page = offset % page_size
            while page_id >= self._pool.num_pages:
                self._pool.allocate()
            take = min(page_size - in_page, len(payload) - cursor)
            page = bytearray(self._pool.read_page(page_id))
            page[in_page:in_page + take] = payload[cursor:cursor + take]
            self._pool.write_page(page_id, bytes(page))
            cursor += take
            offset += take
        self._append_offset += len(payload)
        return pointer

    def read(self, pointer: RecordPointer) -> bytes:
        """Read a record back; touches each spanned page once."""
        if pointer.offset + pointer.length > self._append_offset:
            raise ValueError(
                f"record pointer {pointer} reaches past end of file "
                f"({self._append_offset} bytes)")
        if pointer.length == 0:
            return b""
        page_size = self.page_size
        first_page = pointer.offset // page_size
        last_page = (pointer.offset + pointer.length - 1) // page_size
        chunks = []
        for page_id in range(first_page, last_page + 1):
            chunks.append(self._pool.read_page(page_id))
        blob = b"".join(chunks)
        start = pointer.offset - first_page * page_size
        return blob[start:start + pointer.length]

    def read_span(self, start: RecordPointer, end_offset: int) -> bytes:
        """Read the byte range ``[start.offset, end_offset)``.

        Used by DESKS to fetch the POI-list slice between two sub-region
        pointers in one sequential sweep.
        """
        if end_offset < start.offset:
            raise ValueError("read_span end precedes start")
        return self.read(RecordPointer(start.offset,
                                       end_offset - start.offset))

    def flush(self) -> None:
        """Write back dirty buffered pages."""
        self._pool.flush()

    def drop_cache(self) -> None:
        """Flush and evict everything (simulate a cold cache)."""
        self._pool.clear()

    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "RecordFile":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
