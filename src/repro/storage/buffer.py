"""An LRU buffer pool over a :class:`~repro.storage.pages.PageStore`.

The pool serves reads from cache when possible (counting a cache hit instead
of a physical read) and writes back dirty pages on eviction and on
:meth:`BufferPool.flush`.  It is deliberately simple — no pinning — but it
*is* thread-safe: the serving layer (:mod:`repro.service`) issues reads from
a pool of worker threads, so eviction, recency updates, and the I/O counters
are serialised by one lock.  Single-threaded workloads pay only an
uncontended lock acquire per page access.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from ..analysis import make_lock, register_shared
from .pages import PageStore
from .stats import IOStats


@dataclass
class _Frame:
    """One resident page: its bytes and whether they are unflushed."""

    data: bytes
    dirty: bool


class BufferPool:
    """Fixed-capacity LRU page cache with write-back semantics."""

    def __init__(self, store: PageStore, capacity: int = 128) -> None:
        if capacity <= 0:
            raise ValueError(f"buffer capacity must be positive: {capacity}")
        self._store = store
        self.capacity = capacity
        # page_id -> frame; ordered by recency, most recent last.
        self._frames: "OrderedDict[int, _Frame]" = OrderedDict()
        # Guards frames, eviction, and the shared I/O counters.  RLock so
        # close() may call flush() without re-entrancy gymnastics.
        self._lock = make_lock("storage.buffer_pool", reentrant=True)
        register_shared(self, "storage.buffer_pool")

    # -- metrics ------------------------------------------------------------

    @property
    def stats(self) -> IOStats:
        """The underlying store's I/O stats (hits are recorded there too)."""
        return self._store.stats

    @property
    def store(self) -> PageStore:
        """The backing page store (the durability layer scrubs through it)."""
        return self._store

    @property
    def num_cached(self) -> int:
        """Number of pages currently resident."""
        with self._lock:
            return len(self._frames)

    @property
    def page_size(self) -> int:
        return self._store.page_size

    @property
    def num_pages(self) -> int:
        return self._store.num_pages

    # -- operations ------------------------------------------------------------

    def allocate(self) -> int:
        """Allocate a new page in the store (not yet cached)."""
        with self._lock:
            return self._store.allocate()

    def read_page(self, page_id: int) -> bytes:
        """Read a page, via cache when resident."""
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                self._frames.move_to_end(page_id)
                self.stats.record_read(hit=True)
                return frame.data
            data = self._store.read_page(page_id)
            self._insert(page_id, data, dirty=False)
            return data

    def write_page(self, page_id: int, data: bytes) -> None:
        """Stage a page write; flushed to the store on eviction/flush."""
        if len(data) > self.page_size:
            raise ValueError(
                f"page payload of {len(data)} bytes exceeds page size "
                f"{self.page_size}")
        if len(data) < self.page_size:
            data = data + b"\x00" * (self.page_size - len(data))
        with self._lock:
            frame = self._frames.get(page_id)
            if frame is not None:
                frame.data = data
                frame.dirty = True
                self._frames.move_to_end(page_id)
            else:
                self._insert(page_id, data, dirty=True)

    def flush(self) -> None:
        """Write every dirty resident page back to the store."""
        with self._lock:
            for page_id, frame in self._frames.items():
                if frame.dirty:
                    self._store.write_page(page_id, frame.data)
                    frame.dirty = False

    def clear(self) -> None:
        """Flush and drop all resident pages (cold-cache reset)."""
        with self._lock:
            self.flush()
            self._frames.clear()

    def close(self) -> None:
        """Flush and close the underlying store."""
        with self._lock:
            self.flush()
            self._store.close()

    # -- internals ------------------------------------------------------------

    def _insert(self, page_id: int, data: bytes, dirty: bool) -> None:
        # Caller holds self._lock.
        while len(self._frames) >= self.capacity:
            evicted_id, evicted = self._frames.popitem(last=False)
            if evicted.dirty:
                self._store.write_page(evicted_id, evicted.data)
        self._frames[page_id] = _Frame(data, dirty)

    def __enter__(self) -> "BufferPool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
