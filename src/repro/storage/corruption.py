"""Deterministic corruption injection for durability testing.

Whole-replica loss is already covered by the cluster's
:class:`~repro.cluster.replica.FaultInjector`; this module models the far
more common *partial* failures — a flipped bit, a torn page write, a
truncated file — at the byte level, deterministically under a seed so a
failing chaos run replays exactly.

The injector mutates the **physical** bytes beneath a
:class:`~repro.storage.pages.ChecksummedPageStore` (its ``inner`` store),
which is where real corruption lands: the framing layer must then *detect*
it on read.  Production code never imports this module.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .pages import ChecksummedPageStore, PageStore, _FRAME_STAMP

#: Supported page-corruption kinds, in the order the injector draws them.
PAGE_CORRUPTION_KINDS = ("flip", "truncate", "tear")


@dataclass(frozen=True)
class Corruption:
    """One injected corruption, for replay and assertions."""

    kind: str
    page_id: int
    detail: str


class CorruptionInjector:
    """Seeded bit flips, page truncations, and torn writes.

    All draws come from one private :class:`random.Random`, so a given
    seed produces the same corruption sequence regardless of wall clock or
    interpreter hashing — the property the chaos harness relies on to
    replay a failure.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self.log: List[Corruption] = []

    # -- page-level ----------------------------------------------------------

    def corrupt_page(self, store: ChecksummedPageStore,
                     page_id: Optional[int] = None,
                     kind: Optional[str] = None) -> Corruption:
        """Corrupt one (random) page of ``store``'s physical bytes."""
        if store.num_pages == 0:
            raise ValueError("store has no pages to corrupt")
        if page_id is None:
            page_id = self._rng.randrange(store.num_pages)
        if kind is None:
            kind = self._rng.choice(PAGE_CORRUPTION_KINDS)
        inner = store.inner
        raw = bytearray(inner.read_page(page_id))
        if kind == "flip":
            bit = self._rng.randrange(len(raw) * 8)
            raw[bit // 8] ^= 1 << (bit % 8)
            detail = f"bit {bit}"
        elif kind == "truncate":
            keep = self._rng.randrange(1, len(raw))
            raw[keep:] = bytes(len(raw) - keep)
            detail = f"kept {keep} bytes"
        elif kind == "tear":
            # Header and trailing stamp disagree: the classic half-flushed
            # page.  +1 mod 2^32 guarantees a mismatch without relying on
            # the checksum to catch it.
            stamp_at = len(raw) - _FRAME_STAMP.size
            (stamp,) = _FRAME_STAMP.unpack_from(raw, stamp_at)
            _FRAME_STAMP.pack_into(raw, stamp_at, (stamp + 1) & 0xFFFFFFFF)
            detail = f"stamp {stamp} -> {(stamp + 1) & 0xFFFFFFFF}"
        else:
            raise ValueError(f"unknown corruption kind {kind!r}")
        inner.write_page(page_id, bytes(raw))
        corruption = Corruption(kind, page_id, detail)
        self.log.append(corruption)
        return corruption

    def corrupt_store(self, store: ChecksummedPageStore,
                      count: int = 1) -> List[Corruption]:
        """Inject ``count`` independent corruptions into ``store``."""
        return [self.corrupt_page(store) for _ in range(count)]

    def pick_store(self, stores: Sequence[PageStore]) -> PageStore:
        """Deterministically choose one of several stores to target."""
        if not stores:
            raise ValueError("no stores to choose from")
        return stores[self._rng.randrange(len(stores))]

    # -- file-level ----------------------------------------------------------

    def corrupt_file(self, path: str,
                     offset: Optional[int] = None) -> Corruption:
        """Flip one bit of a file on disk (saved-index blobs, WAL tails)."""
        size = os.path.getsize(path)
        if size == 0:
            raise ValueError(f"cannot corrupt empty file {path}")
        if offset is None:
            offset = self._rng.randrange(size)
        with open(path, "r+b") as handle:
            handle.seek(offset)
            byte = handle.read(1)[0]
            handle.seek(offset)
            handle.write(bytes([byte ^ (1 << self._rng.randrange(8))]))
        corruption = Corruption("file-flip", -1, f"{path}@{offset}")
        self.log.append(corruption)
        return corruption

    def truncate_file(self, path: str,
                      keep_bytes: Optional[int] = None) -> Corruption:
        """Cut a file short, as an interrupted append would."""
        size = os.path.getsize(path)
        if keep_bytes is None:
            keep_bytes = self._rng.randrange(size) if size else 0
        with open(path, "r+b") as handle:
            handle.truncate(keep_bytes)
        corruption = Corruption("file-truncate", -1,
                                f"{path} {size} -> {keep_bytes} bytes")
        self.log.append(corruption)
        return corruption
