"""Simulated-disk substrate: pages, buffer pool, records, I/O accounting."""

from .buffer import BufferPool
from .pages import PAGE_SIZE, FilePageStore, InMemoryPageStore, PageStore
from .recordfile import RecordFile, RecordPointer
from .serializer import (
    decode_floats,
    decode_sorted_ids,
    decode_uint_list,
    decode_varint,
    encode_floats,
    encode_sorted_ids,
    encode_uint_list,
    encode_varint,
)
from .stats import IOSnapshot, IOStats, SearchStats

__all__ = [
    "PAGE_SIZE",
    "BufferPool",
    "FilePageStore",
    "IOSnapshot",
    "IOStats",
    "InMemoryPageStore",
    "PageStore",
    "RecordFile",
    "RecordPointer",
    "SearchStats",
    "decode_floats",
    "decode_sorted_ids",
    "decode_uint_list",
    "decode_varint",
    "encode_floats",
    "encode_sorted_ids",
    "encode_uint_list",
    "encode_varint",
]
