"""Simulated-disk substrate: pages, buffer pool, records, I/O accounting,
and the durability primitives (checksummed frames, corruption injection,
write-ahead logging)."""

from .buffer import BufferPool
from .checksum import crc32c
from .corruption import Corruption, CorruptionInjector, PAGE_CORRUPTION_KINDS
from .pages import (
    FRAME_OVERHEAD,
    PAGE_SIZE,
    ChecksummedPageStore,
    FilePageStore,
    InMemoryPageStore,
    PageCorruptionError,
    PageStore,
    ScrubReport,
)
from .recordfile import RecordFile, RecordPointer
from .serializer import (
    decode_floats,
    decode_keywords,
    decode_sorted_ids,
    decode_text,
    decode_uint_list,
    decode_varint,
    encode_floats,
    encode_keywords,
    encode_sorted_ids,
    encode_text,
    encode_uint_list,
    encode_varint,
)
from .stats import IOSnapshot, IOStats, SearchStats
from .wal import (
    RECORD_OP,
    SimulatedCrash,
    WalCorruptionError,
    WalScrubReport,
    WriteAheadLog,
    wal_scrub,
)

__all__ = [
    "FRAME_OVERHEAD",
    "PAGE_CORRUPTION_KINDS",
    "PAGE_SIZE",
    "RECORD_OP",
    "BufferPool",
    "ChecksummedPageStore",
    "Corruption",
    "CorruptionInjector",
    "FilePageStore",
    "IOSnapshot",
    "IOStats",
    "InMemoryPageStore",
    "PageCorruptionError",
    "PageStore",
    "RecordFile",
    "RecordPointer",
    "ScrubReport",
    "SearchStats",
    "SimulatedCrash",
    "WalCorruptionError",
    "WalScrubReport",
    "WriteAheadLog",
    "crc32c",
    "decode_floats",
    "decode_keywords",
    "decode_sorted_ids",
    "decode_text",
    "decode_uint_list",
    "decode_varint",
    "encode_floats",
    "encode_keywords",
    "encode_sorted_ids",
    "encode_text",
    "encode_uint_list",
    "encode_varint",
    "wal_scrub",
]
