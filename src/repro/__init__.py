"""DESKS: Direction-Aware Spatial Keyword Search — full reproduction.

Reproduces Li, Feng & Xu, *DESKS: Direction-Aware Spatial Keyword Search*
(ICDE 2012): the direction-aware band/sub-region index, its pruning lemmas
and search algorithms, the incremental direction-update algorithms, and the
baselines the paper compares against (filter-and-verify R-tree, MIR2-tree,
IR-tree/LkT) — all on a simulated-disk storage substrate.

Quickstart::

    from repro import DesksIndex, DesksSearcher, DirectionalQuery
    from repro.datasets import load_preset

    pois = load_preset("CA", scale=1000)
    index = DesksIndex(pois)
    searcher = DesksSearcher(index)
    query = DirectionalQuery.make(x=5000, y=5000, alpha=0.0, beta=1.0472,
                                  keywords=["chinese", "food"], k=10)
    for entry in searcher.search(query):
        print(entry.poi_id, entry.distance)
"""

from .core import (
    CardinalityEstimator,
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    IncrementalSearcher,
    MatchMode,
    MutableDesksIndex,
    PruningMode,
    QueryResult,
    QueryTrace,
    ResultEntry,
    brute_force_search,
    load_index,
    save_index,
)
from .cluster import FaultInjector, ShardRouter
from .datasets import POI, POICollection
from .geometry import DirectionInterval, Point
from .service import (
    Deadline,
    MetricsRegistry,
    QueryEngine,
    ResultCache,
    ServiceResponse,
    run_closed_loop,
)
from .trace import ExplainReport, TraceSink, Tracer, explain

__version__ = "1.0.0"

__all__ = [
    "CardinalityEstimator",
    "Deadline",
    "DesksIndex",
    "DesksSearcher",
    "DirectionInterval",
    "DirectionalQuery",
    "ExplainReport",
    "FaultInjector",
    "IncrementalSearcher",
    "MatchMode",
    "MetricsRegistry",
    "MutableDesksIndex",
    "POI",
    "POICollection",
    "Point",
    "PruningMode",
    "QueryEngine",
    "QueryResult",
    "QueryTrace",
    "ResultCache",
    "ResultEntry",
    "ServiceResponse",
    "ShardRouter",
    "TraceSink",
    "Tracer",
    "brute_force_search",
    "explain",
    "load_index",
    "run_closed_loop",
    "save_index",
    "__version__",
]
