"""Partitioning a POI collection into shards.

A partitioner splits a :class:`~repro.datasets.POICollection` into ``S``
disjoint, covering id sets and summarizes each with the two statistics the
router prunes and ranks by: the shard's MBR (for the sector-intersection
test and ``MINDIST`` ordering) and its per-keyword document frequencies
(for keyword pruning and cardinality estimation).  Three strategies:

``grid``
    Equi-depth spatial tiling (sort-tile-recursive): POIs are sorted by x
    into ``C ~ sqrt(S)`` columns of near-equal population, each column
    sorted by y and cut into rows.  Shards are compact rectangles of
    near-equal size — the workload-aware sizing WISK argues for, in its
    simplest data-driven form — so a query sector overlaps few of them.
``angular``
    Equi-depth angular bands around the dataset centroid.  Each shard owns
    a wedge of directions, which is maximally synergistic with *narrow*
    direction intervals for queries near the data's center of mass — the
    cluster-level analogue of the paper's direction wedges, and the spirit
    of QDR-Tree's direction-aware clustering.
``hash``
    ``poi_id mod S`` — the locality-free control.  Every shard's MBR is
    nearly the dataset MBR, so sector pruning almost never fires; benches
    use it to show what spatial partitioning buys.

All partitioners are deterministic, and every shard's id list is sorted
ascending.  That ordering is load-bearing: :class:`~repro.datasets.
POICollection` renumbers POIs densely on construction, and a sorted id
list makes each shard's local id order agree with global id order, so
per-shard top-k tie-breaking (by distance, then id) matches what the
unsharded index would do — the cornerstone of exact scatter-gather
equivalence.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..datasets import POI, POICollection
from ..geometry import MBR, Point

#: A partitioner assigns every global POI id to exactly one of S shards.
AssignFn = Callable[[POICollection, int], List[List[int]]]


@dataclass(frozen=True)
class ShardSpec:
    """One shard's identity and routing statistics."""

    shard_id: int
    #: Global POI ids owned by this shard, sorted ascending (see module
    #: docstring for why the ordering matters).
    global_ids: Tuple[int, ...]
    #: Smallest rectangle containing every member POI.
    mbr: MBR
    #: keyword -> number of member POIs containing it.
    keyword_df: Dict[str, int]

    def __len__(self) -> int:
        return len(self.global_ids)

    def may_match_keywords(self, keywords, require_all: bool) -> bool:
        """Can any member POI satisfy the keyword predicate?

        Document frequencies make this exact as a *negative* test: a
        conjunctive query with any zero-frequency keyword, or a
        disjunctive query with all-zero frequencies, provably has no
        answers here.
        """
        if require_all:
            return all(self.keyword_df.get(k, 0) > 0 for k in keywords)
        return any(self.keyword_df.get(k, 0) > 0 for k in keywords)


@dataclass(frozen=True)
class ClusterLayout:
    """A complete, validated partition of a collection into shards."""

    partitioner: str
    num_pois: int
    shards: Tuple[ShardSpec, ...]

    @property
    def num_shards(self) -> int:
        """Number of shards in the layout."""
        return len(self.shards)

    def to_meta(self) -> dict:
        """JSON-serializable form for the cluster manifest (persistence).

        MBRs and document frequencies are derivable from the shard
        collections at load time; only the identity needs storing.
        """
        return {
            "partitioner": self.partitioner,
            "num_pois": self.num_pois,
            "shard_global_ids": [list(s.global_ids) for s in self.shards],
        }


def _chunk_bounds(total: int, parts: int) -> List[Tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous near-equal runs."""
    bounds = []
    start = 0
    for part in range(parts):
        size = total // parts + (1 if part < total % parts else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def grid_assign(collection: POICollection, num_shards: int) -> List[List[int]]:
    """Equi-depth spatial tiling (sort-tile-recursive, STR packing)."""
    ids = sorted(range(len(collection)),
                 key=lambda i: (collection.location(i).x,
                                collection.location(i).y, i))
    num_cols = max(1, round(math.sqrt(num_shards)))
    # Distribute the S tiles over the columns (rows may differ by one).
    rows_per_col = [num_shards // num_cols
                    + (1 if c < num_shards % num_cols else 0)
                    for c in range(num_cols)]
    rows_per_col = [r for r in rows_per_col if r > 0]
    shards: List[List[int]] = []
    cursor = 0
    remaining = len(ids)
    remaining_tiles = num_shards
    for rows in rows_per_col:
        # Column population proportional to its tile count keeps every
        # tile near n/S POIs even when rows differ across columns.
        col_size = round(remaining * rows / remaining_tiles)
        column = ids[cursor:cursor + col_size]
        cursor += col_size
        remaining -= col_size
        remaining_tiles -= rows
        column.sort(key=lambda i: (collection.location(i).y,
                                   collection.location(i).x, i))
        for lo, hi in _chunk_bounds(len(column), rows):
            shards.append(column[lo:hi])
    return shards


def angular_assign(collection: POICollection,
                   num_shards: int) -> List[List[int]]:
    """Equi-depth angular bands around the dataset centroid."""
    n = len(collection)
    cx = sum(collection.location(i).x for i in range(n)) / n
    cy = sum(collection.location(i).y for i in range(n)) / n
    centroid = Point(cx, cy)

    def angle_key(poi_id: int) -> Tuple[float, int]:
        location = collection.location(poi_id)
        if location.coincides(centroid):
            return (0.0, poi_id)  # the centroid itself has no direction
        return (centroid.direction_to(location), poi_id)

    ids = sorted(range(n), key=angle_key)
    return [ids[lo:hi] for lo, hi in _chunk_bounds(n, num_shards)]


def hash_assign(collection: POICollection,
                num_shards: int) -> List[List[int]]:
    """``poi_id mod S`` — the no-spatial-locality control."""
    shards: List[List[int]] = [[] for _ in range(num_shards)]
    for poi_id in range(len(collection)):
        shards[poi_id % num_shards].append(poi_id)
    return shards


PARTITIONERS: Dict[str, AssignFn] = {
    "grid": grid_assign,
    "angular": angular_assign,
    "hash": hash_assign,
}


def build_layout(collection: POICollection, num_shards: int,
                 partitioner: str = "grid") -> ClusterLayout:
    """Partition ``collection`` and derive each shard's routing stats.

    Validates that the assignment is a true partition (every id exactly
    once, no empty shard) before trusting it.
    """
    try:
        assign = PARTITIONERS[partitioner]
    except KeyError:
        raise ValueError(
            f"unknown partitioner {partitioner!r}; expected one of "
            f"{sorted(PARTITIONERS)}") from None
    if num_shards < 1:
        raise ValueError(f"num_shards must be positive: {num_shards}")
    if num_shards > len(collection):
        raise ValueError(
            f"cannot split {len(collection)} POIs into {num_shards} "
            "non-empty shards")
    assignment = assign(collection, num_shards)
    _validate_assignment(assignment, len(collection), num_shards)
    specs: List[ShardSpec] = []
    for shard_id, members in enumerate(assignment):
        ids = tuple(sorted(members))
        mbr = MBR.from_points(collection.location(i) for i in ids)
        df: Counter = Counter()
        for poi_id in ids:
            df.update(collection[poi_id].keywords)
        specs.append(ShardSpec(shard_id, ids, mbr, dict(df)))
    return ClusterLayout(partitioner, len(collection), tuple(specs))


def shard_collection(collection: POICollection,
                     spec: ShardSpec) -> POICollection:
    """The shard's POIs as a standalone collection (ids renumbered).

    Members are emitted in ascending global id order, so local id ``j``
    maps to ``spec.global_ids[j]`` — the bridge the router uses to return
    global answers.
    """
    return POICollection([
        POI(poi_id, collection[g].location, collection[g].keywords)
        for poi_id, g in enumerate(spec.global_ids)
    ])


def _validate_assignment(assignment: Sequence[Sequence[int]], num_pois: int,
                         num_shards: int) -> None:
    if len(assignment) != num_shards:
        raise ValueError(
            f"partitioner produced {len(assignment)} shards, not "
            f"{num_shards}")
    seen: set = set()
    total = 0
    for shard_id, members in enumerate(assignment):
        if not members:
            raise ValueError(f"shard {shard_id} is empty")
        total += len(members)
        seen.update(members)
    if total != num_pois or seen != set(range(num_pois)):
        raise ValueError(
            "partitioner output is not a partition of the collection "
            f"({total} assignments over {len(seen)} distinct ids for "
            f"{num_pois} POIs)")
