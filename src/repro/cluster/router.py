"""Scatter-gather query routing with direction-aware shard pruning.

:class:`ShardRouter` is the cluster's front door.  It partitions a
collection into ``S`` independent :class:`~repro.core.DesksIndex` shards
(via :mod:`repro.cluster.partition`) and answers a query in four steps:

1. **Prune** — discard shards whose keyword document frequencies rule out
   any match, then shards whose MBR does not intersect the query sector
   (:func:`~repro.geometry.sector_intersects_mbr`).  Both tests are exact
   as negative tests, so pruning never changes answers — the cluster-level
   analogue of the paper's Lemmas 2-4.
2. **Order** — rank survivors by ``MINDIST(q, shard_mbr)`` ascending with
   estimated result cardinality (per-shard
   :class:`~repro.core.CardinalityEstimator`) as the tie-break: nearer
   shards bound the k-th distance sooner, and denser shards tighten it
   faster.
3. **Scatter** — dispatch survivors to their replica sets in waves of
   ``max_fanout`` on one shared thread pool; each shard answers with its
   local top-k (replication and failover live in
   :mod:`repro.cluster.replica`).
4. **Gather** — merge local top-k streams into the global top-k, mapping
   local ids back to global ids.  Between waves, any remaining shard whose
   MINDIST cannot beat the current global k-th bound is *skipped* — the
   cluster-level mirror of Lemma 1's early termination.

Exactness: answers equal the unsharded index's, bitwise, including
tie-breaking — distances are computed from the same coordinates, and each
shard's local id order equals global id order by construction (see
``partition.py``) — except when a whole shard (every replica) fails, in
which case the response is flagged degraded (``partial=True``) and the
failed shard ids are reported.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core import (
    CardinalityEstimator,
    DesksIndex,
    DirectionalQuery,
    MatchMode,
    PruningMode,
    QueryResult,
    ResultEntry,
    load_sharded,
    save_sharded,
)
from ..datasets import POICollection
from ..geometry import sector_intersects_mbr
from ..service import Deadline, MetricsRegistry
from ..trace import current_tracer, traced
from .partition import ClusterLayout, ShardSpec, build_layout, shard_collection
from .replica import FaultInjector, ReplicaSet, ShardUnavailableError
from .stats import ClusterStats
from .transport import ShardTransport


class Shard:
    """One shard: spec, data, estimator, and its serving transport.

    ``transport`` is anything satisfying
    :class:`~repro.cluster.transport.ShardTransport` — the in-process
    :class:`~repro.cluster.replica.ReplicaSet`, or
    :class:`~repro.net.RemoteReplicaSet` speaking to shard server
    processes.  ``index`` is the local index when the shard's data lives
    in this process, and ``None`` for remote shards (the router then
    routes on the spec alone and cannot :meth:`ShardRouter.save`).
    """

    def __init__(self, spec: ShardSpec, collection: POICollection,
                 index: Optional[DesksIndex],
                 transport: "ShardTransport") -> None:
        self.spec = spec
        self.collection = collection
        self.index = index
        self.transport = transport
        self.estimator = CardinalityEstimator(collection)

    @property
    def replicas(self) -> "ShardTransport":
        """Backward-compatible alias for :attr:`transport`."""
        return self.transport

    def globalize(self, result: QueryResult) -> List[ResultEntry]:
        """Map a shard-local result's POI ids back to global ids."""
        ids = self.spec.global_ids
        return [ResultEntry(ids[entry.poi_id], entry.distance)
                for entry in result.entries]


@dataclass
class ClusterResponse:
    """One routed query: the merged answer plus the routing decisions."""

    query: DirectionalQuery
    result: QueryResult
    shards_total: int
    shards_pruned: int              # sector (direction + distance) pruning
    shards_keyword_pruned: int      # document-frequency pruning
    shards_dispatched: int
    shards_skipped: int             # early termination (k-th bound)
    failed_shards: List[int] = field(default_factory=list)
    #: Shards that currently hold >= 1 corruption-quarantined replica.
    #: The answer may still be complete (failover found intact replicas),
    #: but the operator signal must travel with the response.
    quarantined_shards: List[int] = field(default_factory=list)
    replica_retries: int = 0
    latency_seconds: float = 0.0
    #: The query's deadline expired before every wave was dispatched.
    deadline_expired: bool = False

    @property
    def degraded(self) -> bool:
        """True when at least one whole shard failed to answer."""
        return bool(self.failed_shards)

    @property
    def unavailable_shards(self) -> Tuple[int, ...]:
        """Lost shards as a sorted tuple: the typed brownout signal.

        The frontend forwards this verbatim inside the wire response
        (see :func:`repro.net.protocol.encode_search_response`) so a
        remote client can tell *which* shards a partial answer is
        missing, not merely that something was lost.
        """
        return tuple(sorted(self.failed_shards))

    @property
    def pruning_rate(self) -> float:
        """Fraction of shards ruled out before dispatch (all causes)."""
        avoided = (self.shards_pruned + self.shards_keyword_pruned
                   + self.shards_skipped)
        return avoided / self.shards_total if self.shards_total else 0.0


class ShardRouter:
    """A sharded DESKS deployment behind a single ``execute()`` call."""

    def __init__(self, collection: POICollection,
                 num_shards: int = 4,
                 partitioner: str = "grid",
                 layout: Optional[ClusterLayout] = None,
                 replication: int = 1,
                 num_workers: int = 8,
                 max_fanout: int = 4,
                 num_bands: Optional[int] = None,
                 num_wedges: Optional[int] = None,
                 mode: PruningMode = PruningMode.RD,
                 cache_capacity: int = 128,
                 fault_injector: Optional[FaultInjector] = None,
                 health_threshold: int = 3,
                 metrics: Optional[MetricsRegistry] = None,
                 kernel: str = "object",
                 _prebuilt: Optional[Sequence[Tuple[ShardSpec,
                                                    DesksIndex]]] = None,
                 ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1: {num_workers}")
        if max_fanout < 1:
            raise ValueError(f"max_fanout must be >= 1: {max_fanout}")
        self.mode = mode
        self.kernel = kernel
        self.max_fanout = max_fanout
        self.fault_injector = fault_injector
        self.stats = ClusterStats(metrics)
        self._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="desks-shard")
        self.shards: List[Shard] = []
        try:
            if _prebuilt is not None:
                pairs = [(spec, index.collection, index)
                         for spec, index in _prebuilt]
                self.layout = ClusterLayout(
                    partitioner, sum(len(spec) for spec, _ in _prebuilt),
                    tuple(spec for spec, _ in _prebuilt))
            else:
                self.layout = (layout if layout is not None
                               else build_layout(collection, num_shards,
                                                 partitioner))
                pairs = []
                for spec in self.layout.shards:
                    sub = shard_collection(collection, spec)
                    pairs.append((spec, sub,
                                  DesksIndex(sub, num_bands, num_wedges)))
            for spec, sub, index in pairs:
                replicas = ReplicaSet(
                    spec.shard_id, index, replication, mode=mode,
                    cache_capacity=cache_capacity,
                    executor=self._executor,
                    fault_injector=fault_injector,
                    health_threshold=health_threshold,
                    metrics=self.stats.registry,
                    kernel=kernel)
                self.shards.append(Shard(spec, sub, index, replicas))
        except Exception:
            self._executor.shutdown(wait=False)
            raise
        self.num_shards = len(self.shards)
        self.replication = replication

    @classmethod
    def from_transports(cls,
                        shards: Sequence[Tuple[ShardSpec, POICollection,
                                               "ShardTransport"]],
                        partitioner: str = "remote",
                        num_workers: int = 8,
                        max_fanout: int = 4,
                        mode: PruningMode = PruningMode.RD,
                        metrics: Optional[MetricsRegistry] = None,
                        ) -> "ShardRouter":
        """A router over pre-existing transports (e.g. remote servers).

        ``shards`` pairs each :class:`~repro.cluster.partition.ShardSpec`
        and its collection (for routing statistics — MBR pruning and
        cardinality estimation need the data's *shape*, not its index)
        with the transport that executes queries against it.  Scatter-
        gather, pruning, ordering, and merge behave identically to a
        locally-built router; only the per-shard call crosses the
        transport.
        """
        if not shards:
            raise ValueError("from_transports needs >= 1 shard")
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1: {num_workers}")
        if max_fanout < 1:
            raise ValueError(f"max_fanout must be >= 1: {max_fanout}")
        router = cls.__new__(cls)
        router.mode = mode
        router.kernel = "object"
        router.max_fanout = max_fanout
        router.fault_injector = None
        router.stats = ClusterStats(metrics)
        router._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="desks-shard")
        router.shards = [Shard(spec, collection, None, transport)
                         for spec, collection, transport in shards]
        router.layout = ClusterLayout(
            partitioner,
            sum(len(spec) for spec, _, _ in shards),
            tuple(spec for spec, _, _ in shards))
        router.num_shards = len(router.shards)
        router.replication = max(len(shard.transport)
                                 for shard in router.shards)
        return router

    # -- routing ------------------------------------------------------------

    def plan(self, query: DirectionalQuery,
             ) -> Tuple[List[Tuple[float, Shard]], int, int]:
        """Prune and order shards for one query.

        Returns ``(survivors, keyword_pruned, sector_pruned)`` where
        ``survivors`` is ``(MINDIST, shard)`` sorted by (MINDIST,
        -estimated cardinality, shard id).
        """
        require_all = query.match_mode is MatchMode.ALL
        keyword_pruned = sector_pruned = 0
        ranked: List[Tuple[float, float, int, Shard]] = []
        for shard in self.shards:
            spec = shard.spec
            if not spec.may_match_keywords(query.keywords, require_all):
                keyword_pruned += 1
                continue
            if not sector_intersects_mbr(query.location, query.interval,
                                         spec.mbr):
                sector_pruned += 1
                continue
            mindist = spec.mbr.min_distance_to_point(query.location)
            estimate = shard.estimator.estimate_matching_pois(query)
            ranked.append((mindist, -estimate, spec.shard_id, shard))
        ranked.sort(key=lambda item: item[:3])
        return ([(mindist, shard) for mindist, _, _, shard in ranked],
                keyword_pruned, sector_pruned)

    def execute(self, query: DirectionalQuery,
                timeout: Optional[float] = None) -> ClusterResponse:
        """Scatter ``query`` to the relevant shards and gather the top-k.

        ``timeout`` becomes one :class:`~repro.service.Deadline` spanning
        the whole scatter-gather: each wave's shard calls receive only the
        *remaining* budget, and once the budget is gone, waves stop
        dispatching — the shards not yet reached are counted as skipped
        and the answer is flagged partial.

        With a :class:`~repro.trace.Tracer` active in the calling context
        the scatter-gather records a ``router.execute`` span tree:
        ``router.plan`` (pruning decisions), one ``router.wave`` per
        dispatch wave, and one ``router.shard`` per shard call — running
        on the pool but parented under its wave, with queue wait recorded.
        """
        tracer = current_tracer()
        if tracer is None:
            return self._execute_impl(query, timeout, None, None)
        with tracer.span("router.execute") as span:
            return self._execute_impl(query, timeout, tracer, span)

    def _execute_impl(self, query: DirectionalQuery,
                      timeout: Optional[float], tracer, span,
                      ) -> ClusterResponse:
        """The untraced scatter-gather body (``execute`` wraps it)."""
        started = time.monotonic()
        deadline = Deadline.from_timeout(timeout)
        survivors, keyword_pruned, sector_pruned = self.plan(query)
        if tracer is not None:
            tracer.record(
                "router.plan", seconds=time.monotonic() - started,
                parent=span, shards_total=self.num_shards,
                shards_keyword_pruned=keyword_pruned,
                shards_sector_pruned=sector_pruned,
                survivors=len(survivors))

        merged: List[ResultEntry] = []
        kth_bound = float("inf")
        failed: List[int] = []
        retries = 0
        dispatched = skipped = 0
        partial = False
        deadline_expired = False
        position = 0
        wave_number = 0
        while position < len(survivors):
            if deadline.expired():
                # Budget exhausted between waves: everything still queued
                # is abandoned, and the merged best-so-far ships partial.
                deadline_expired = True
                partial = True
                skipped += len(survivors) - position
                break
            shard_timeout = (None if deadline.is_unbounded
                             else deadline.remaining())
            wave_cm = (tracer.span("router.wave", wave=wave_number)
                       if tracer is not None else nullcontext())
            with wave_cm as wave_span:
                wave: List[Tuple[Shard, "Future"]] = []
                wave_skipped = 0
                while (position < len(survivors)
                       and len(wave) < self.max_fanout):
                    mindist, shard = survivors[position]
                    position += 1
                    # Early termination (cluster-level Lemma 1): survivors
                    # are MINDIST-sorted, but only this shard is decided
                    # here — later shards may still be reached after the
                    # next wave re-tightens the bound.  Strict > keeps
                    # distance ties eligible so global tie-breaking
                    # matches the unsharded index.
                    if mindist > kth_bound:
                        skipped += 1
                        wave_skipped += 1
                        continue
                    call = shard.transport.execute
                    if tracer is not None:
                        call = traced("router.shard", call,
                                      record_queue_wait=True,
                                      shard_id=shard.spec.shard_id,
                                      mindist=mindist)
                    wave.append((shard,
                                 self._executor.submit(call, query,
                                                       shard_timeout)))
                dispatched += len(wave)
                for shard, future in wave:
                    try:
                        response, attempts = future.result()
                    except ShardUnavailableError:
                        failed.append(shard.spec.shard_id)
                        retries += len(shard.transport) - 1
                        partial = True
                        continue
                    retries += attempts
                    partial = partial or response.result.partial
                    merged.extend(shard.globalize(response.result))
                merged.sort()
                del merged[query.k:]
                if len(merged) == query.k:
                    kth_bound = merged[-1].distance
                if wave_span is not None:
                    wave_span.annotate(
                        shards_dispatched=len(wave),
                        shards_skipped=wave_skipped,
                        merged_results=len(merged),
                        kth_bound=kth_bound)
            wave_number += 1

        quarantined = [shard.spec.shard_id for shard in self.shards
                       if shard.transport.quarantined_replicas()]
        response = ClusterResponse(
            query=query,
            result=QueryResult(merged, partial=partial),
            shards_total=self.num_shards,
            shards_pruned=sector_pruned,
            shards_keyword_pruned=keyword_pruned,
            shards_dispatched=dispatched,
            shards_skipped=skipped,
            failed_shards=failed,
            quarantined_shards=quarantined,
            replica_retries=retries,
            latency_seconds=time.monotonic() - started,
            deadline_expired=deadline_expired,
        )
        if span is not None:
            span.annotate(
                results=len(response.result),
                partial=response.result.partial,
                shards_total=self.num_shards,
                shards_keyword_pruned=keyword_pruned,
                shards_sector_pruned=sector_pruned,
                shards_dispatched=dispatched,
                shards_skipped=skipped,
                waves=wave_number,
                failed_shards=len(failed),
                replica_retries=retries,
                deadline_expired=deadline_expired)
        self.stats.record(response)
        return response

    def search(self, query: DirectionalQuery,
               timeout: Optional[float] = None) -> QueryResult:
        """The merged answer alone (drop the routing diagnostics)."""
        return self.execute(query, timeout).result

    # -- introspection ---------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The cluster-level metrics registry."""
        return self.stats.registry

    def metrics_snapshot(self) -> Dict[str, object]:
        """Cluster + per-shard/replica metrics as one JSON-ready dict."""
        return self.stats.aggregate(self.shards)

    def describe(self) -> str:
        """One line per shard: population, MBR, replica health."""
        lines = [
            f"{self.num_shards} shards ({self.layout.partitioner}), "
            f"replication={self.replication}"
        ]
        for shard in self.shards:
            spec = shard.spec
            healthy = sum(1 for r in shard.transport.replicas if r.healthy)
            lines.append(
                f"  shard {spec.shard_id}: {len(spec):6d} POIs  "
                f"mbr=({spec.mbr.min_x:.0f},{spec.mbr.min_y:.0f})-"
                f"({spec.mbr.max_x:.0f},{spec.mbr.max_y:.0f})  "
                f"replicas={healthy}/{len(shard.transport)} healthy")
        return "\n".join(lines)

    # -- persistence ------------------------------------------------------------

    def save(self, directory: str) -> None:
        """Persist every shard index plus the cluster manifest.

        Only routers holding their shards' indexes locally can save;
        a remote router (built by :meth:`from_transports`) routes over
        data owned by server processes and refuses.
        """
        missing = [shard.spec.shard_id for shard in self.shards
                   if shard.index is None]
        if missing:
            raise ValueError(
                f"cannot save: shards {missing} are remote (their indexes "
                "live in server processes; save from the deployment that "
                "built them)")
        save_sharded([shard.index for shard in self.shards], directory,
                     meta=self.layout.to_meta())

    @classmethod
    def load(cls, directory: str, **kwargs) -> "ShardRouter":
        """Rebuild a router from :meth:`save` output.

        Shard indexes are loaded (linear passes, no global sorts) and
        routing stats (MBRs, document frequencies) are recomputed from the
        shard collections; ``kwargs`` forward to the constructor
        (replication, workers, fault injection, ...).
        """
        indexes, meta = load_sharded(directory)
        id_lists = meta.get("shard_global_ids")
        if id_lists is None or len(id_lists) != len(indexes):
            raise ValueError(
                f"{directory} has no usable cluster layout metadata")
        prebuilt = []
        for shard_id, (index, ids) in enumerate(zip(indexes, id_lists)):
            if len(ids) != len(index.collection):
                raise ValueError(
                    f"shard {shard_id} holds {len(index.collection)} POIs "
                    f"but the manifest lists {len(ids)} ids")
            spec = spec_from_collection(shard_id, tuple(ids),
                                        index.collection)
            prebuilt.append((spec, index))
        return cls(collection=None,
                   partitioner=meta.get("partitioner", "unknown"),
                   _prebuilt=prebuilt, **kwargs)

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        """Close every shard transport and the shared pool."""
        for shard in self.shards:
            shard.transport.close()
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def spec_from_collection(shard_id: int, global_ids: Tuple[int, ...],
                         collection: POICollection) -> ShardSpec:
    """Recompute a shard's routing stats from its loaded collection.

    MBR and keyword document frequencies derive from the data, so only
    identity (shard id + global id list) needs to come from a manifest.
    Used both by :meth:`ShardRouter.load` and by
    :func:`repro.net.connect_router`, which builds routing specs without
    loading the shard *indexes* (those live in the server processes).
    """
    from collections import Counter

    df: Counter = Counter()
    for poi in collection:
        df.update(poi.keywords)
    return ShardSpec(shard_id, global_ids, collection.mbr, dict(df))
