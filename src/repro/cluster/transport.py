"""The transport seam: what the router requires of a shard's serving side.

:class:`~repro.cluster.router.ShardRouter` does not care *where* a
shard's queries execute — in-process on a shared thread pool
(:class:`~repro.cluster.replica.ReplicaSet`) or across a socket in
another OS process (:class:`~repro.net.RemoteReplicaSet`).  It cares
about one contract, written down here as a :class:`typing.Protocol` so
both implementations are checked against the same surface and a future
transport (shared memory, RDMA, a different serialization) only has to
satisfy this file.

The contract is exactly what failover needs:

* ``execute(query, timeout)`` returns ``(response, retries)`` — the
  served answer plus how many replica attempts failed first — or raises
  :class:`~repro.cluster.replica.ShardUnavailableError` when every
  replica of the shard is gone (the router then degrades the answer to
  ``partial=True`` instead of erroring the whole query);
* ``replicas`` exposes per-replica health objects (``healthy``,
  ``replica_id``) for :meth:`~repro.cluster.router.ShardRouter.describe`
  and stats aggregation;
* ``quarantined_replicas()`` lists replicas parked for data corruption
  (sticky — retrying cannot heal damaged pages);
* ``close()`` releases whatever the transport holds open (engines or
  connection pools).
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

from ..core import DirectionalQuery
from ..service import ServiceResponse


@runtime_checkable
class ReplicaState(Protocol):
    """Per-replica health as the router and stats layers read it."""

    replica_id: int
    healthy: bool
    quarantined: bool


@runtime_checkable
class ShardTransport(Protocol):
    """Executes one shard's queries, wherever that shard lives."""

    replicas: Sequence[ReplicaState]

    def execute(self, query: DirectionalQuery,
                timeout: Optional[float] = None,
                ) -> Tuple[ServiceResponse, int]:
        """Serve ``query`` with failover; ``(response, failed_attempts)``.

        Raises :class:`~repro.cluster.replica.ShardUnavailableError`
        when no replica can answer.
        """
        ...  # pragma: no cover - protocol definition

    def __len__(self) -> int:
        """Number of replicas behind this transport."""
        ...  # pragma: no cover - protocol definition

    def quarantined_replicas(self) -> List[int]:
        """Replica ids excluded for corruption until operator action."""
        ...  # pragma: no cover - protocol definition

    def health_summary(self) -> List[dict]:
        """Per-replica health dicts for stats/CLI output."""
        ...  # pragma: no cover - protocol definition

    def close(self) -> None:
        """Release engines, sockets, or whatever the transport holds."""
        ...  # pragma: no cover - protocol definition
