"""Cluster-level metrics, aggregated into the PR-1 ``MetricsRegistry``.

One registry serves the whole cluster.  Router-level counters record the
scatter-gather decisions per query (shards pruned / dispatched / skipped /
failed), and :meth:`ClusterStats.aggregate` folds every replica engine's
private registry into one JSON-ready snapshot via the registries'
``to_dict()`` export, so a single document describes the deployment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from ..service import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .router import ClusterResponse, Shard

#: Buckets for shards-per-query histograms (counts, not seconds).
SHARD_BUCKETS: Tuple[float, ...] = (
    0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class ClusterStats:
    """Records scatter-gather outcomes and aggregates shard metrics."""

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else \
            MetricsRegistry()

    # -- per-query recording -------------------------------------------------

    def record(self, response: "ClusterResponse") -> None:
        """Fold one routed query's outcome into the registry."""
        registry = self.registry
        registry.counter("cluster_queries_total").increment()
        registry.counter("cluster_shards_pruned_total").increment(
            response.shards_pruned)
        registry.counter("cluster_shards_keyword_pruned_total").increment(
            response.shards_keyword_pruned)
        registry.counter("cluster_shards_dispatched_total").increment(
            response.shards_dispatched)
        registry.counter("cluster_shards_skipped_total").increment(
            response.shards_skipped)
        registry.counter("cluster_shards_failed_total").increment(
            len(response.failed_shards))
        registry.counter("cluster_replica_retries_total").increment(
            response.replica_retries)
        if response.failed_shards:
            registry.counter("cluster_degraded_answers_total").increment()
        registry.histogram("cluster_query_latency_seconds").observe(
            response.latency_seconds)
        registry.histogram("cluster_shards_dispatched", SHARD_BUCKETS) \
            .observe(float(response.shards_dispatched))
        registry.histogram("cluster_shards_pruned", SHARD_BUCKETS) \
            .observe(float(response.shards_pruned))

    # -- aggregation -----------------------------------------------------------

    def aggregate(self, shards: List["Shard"]) -> Dict[str, object]:
        """One JSON-ready snapshot for the whole deployment.

        ``cluster`` is the router-level registry; ``shards`` maps shard id
        to its replicas' engine registries (cache hits, latency, pages) and
        replica health, so degraded shards are visible at a glance.
        """
        return {
            "cluster": self.registry.to_dict(),
            "shards": {
                str(shard.spec.shard_id): {
                    "num_pois": len(shard.spec),
                    "replicas": [
                        # Remote replicas have no local engine; their
                        # metrics live in the server process (scrape via
                        # the stats RPC instead).
                        replica.engine.metrics.to_dict()
                        if hasattr(replica, "engine") else {}
                        for replica in shard.transport.replicas
                    ],
                    "health": shard.transport.health_summary(),
                }
                for shard in shards
            },
        }

    def render(self) -> str:
        """Plain-text router metrics (the registry's native rendering)."""
        return self.registry.render()
