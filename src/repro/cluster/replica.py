"""R-way replication with health tracking and injectable faults.

Each shard is served by a :class:`ReplicaSet` of ``R`` replicas.  A
replica wraps its own :class:`~repro.service.QueryEngine` (private result
cache, private metrics) over the shard's index; all replicas of all shards
share one thread pool, so replication adds no threads.

Routing inside the set is round-robin over *healthy* replicas first, then
unhealthy ones as a recovery probe; a replica is marked unhealthy after
``health_threshold`` consecutive failures and healthy again on its first
success.  A query fails over transparently — only when every replica of a
shard fails does the set raise :class:`ShardUnavailableError`, which the
router reports as a degraded (partial) answer rather than an error.

:class:`FaultInjector` makes the degraded modes testable: per-shard /
per-replica rules inject extra latency and/or raise
:class:`InjectedFault` with a configured probability, deterministic under
a seed.  Production code paths never import it; it is plugged in through
the router's ``fault_injector`` argument.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..analysis import make_lock, register_shared
from ..core import DesksIndex, DirectionalQuery, MutableDesksIndex, PruningMode
from ..kernel import ColumnarSnapshot
from ..service import MetricsRegistry, QueryEngine, ServiceResponse
from ..storage import PageCorruptionError


class InjectedFault(RuntimeError):
    """Raised by :class:`FaultInjector` in place of a real replica error."""


class ShardUnavailableError(RuntimeError):
    """Every replica of one shard failed for one query."""

    def __init__(self, shard_id: int, attempts: int,
                 last_error: Optional[BaseException]) -> None:
        self.shard_id = shard_id
        self.attempts = attempts
        self.last_error = last_error
        detail = f": {last_error}" if last_error is not None else ""
        super().__init__(
            f"shard {shard_id} unavailable after {attempts} replica "
            f"attempts{detail}")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: probability of error plus added latency."""

    error_rate: float = 0.0
    extra_latency: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.error_rate <= 1.0:
            raise ValueError(
                f"error_rate must be in [0, 1]: {self.error_rate}")
        if self.extra_latency < 0.0:
            raise ValueError(
                f"extra_latency must be non-negative: {self.extra_latency}")


class FaultInjector:
    """Configurable per-shard / per-replica error and latency injection.

    Rules are keyed by ``(shard_id, replica_id)`` where either side may be
    ``None`` as a wildcard; the most specific match wins, in the order
    exact > shard-wide > replica-position-wide > global.  Thread-safe;
    draws are deterministic under ``seed`` (per call sequence, so tests
    usually use rates of 0.0 or 1.0 when they need exact behavior).
    """

    def __init__(self, seed: int = 0) -> None:
        self._rules: dict = {}
        self._rng = random.Random(seed)
        self._lock = make_lock("cluster.fault_injector")
        self.injected_faults = 0

    def set_fault(self, shard_id: Optional[int] = None,
                  replica_id: Optional[int] = None,
                  error_rate: float = 0.0,
                  extra_latency: float = 0.0) -> None:
        """Install (or replace) the rule for one scope."""
        rule = FaultRule(error_rate, extra_latency)
        with self._lock:
            self._rules[(shard_id, replica_id)] = rule

    def clear(self) -> None:
        """Drop every rule (the cluster heals instantly)."""
        with self._lock:
            self._rules.clear()

    def _match(self, shard_id: int, replica_id: int) -> Optional[FaultRule]:
        for key in ((shard_id, replica_id), (shard_id, None),
                    (None, replica_id), (None, None)):
            rule = self._rules.get(key)
            if rule is not None:
                return rule
        return None

    def before_call(self, shard_id: int, replica_id: int) -> None:
        """Apply the matching rule; raises :class:`InjectedFault` on a hit.

        Called on the pool worker thread about to execute the query, so
        injected latency occupies a worker exactly like slow real work.
        """
        with self._lock:
            rule = self._match(shard_id, replica_id)
            if rule is None:
                return
            fire = rule.error_rate > 0.0 and \
                self._rng.random() < rule.error_rate
            if fire:
                self.injected_faults += 1
        if rule.extra_latency > 0.0:
            time.sleep(rule.extra_latency)
        if fire:
            raise InjectedFault(
                f"injected fault at shard {shard_id} replica {replica_id}")


class Replica:
    """One replica: an engine plus its health state."""

    def __init__(self, shard_id: int, replica_id: int,
                 engine: QueryEngine, health_threshold: int) -> None:
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.engine = engine
        self.health_threshold = health_threshold
        self.healthy = True
        self.consecutive_failures = 0
        self.total_failures = 0
        #: Set on detected data corruption.  Unlike ``healthy`` (which
        #: recovers on the next successful probe), quarantine is sticky:
        #: a replica serving damaged pages must not be retried until an
        #: operator scrubs/restores it and calls :meth:`release`.
        self.quarantined = False
        self.quarantine_cause: Optional[str] = None
        self._lock = make_lock("cluster.replica")
        register_shared(self, "cluster.replica")

    def mark_success(self) -> None:
        """Record a successful request; an unhealthy replica recovers."""
        with self._lock:
            self.consecutive_failures = 0
            self.healthy = True

    def mark_failure(self) -> None:
        """Record a failure; ``health_threshold`` in a row marks unhealthy."""
        with self._lock:
            self.consecutive_failures += 1
            self.total_failures += 1
            if self.consecutive_failures >= self.health_threshold:
                self.healthy = False

    def quarantine(self, cause: str) -> None:
        """Exclude this replica from dispatch until ``release()`` is called."""
        with self._lock:
            self.quarantined = True
            self.quarantine_cause = cause
            self.healthy = False

    def release(self) -> None:
        """Operator action after repair: eligible for traffic again."""
        with self._lock:
            self.quarantined = False
            self.quarantine_cause = None
            self.consecutive_failures = 0
            self.healthy = True


class ReplicaSet:
    """The R replicas serving one shard, with failover routing."""

    def __init__(self, shard_id: int,
                 index: Union[DesksIndex, MutableDesksIndex],
                 replication: int,
                 mode: PruningMode = PruningMode.RD,
                 cache_capacity: int = 128,
                 executor=None,
                 fault_injector: Optional[FaultInjector] = None,
                 health_threshold: int = 3,
                 metrics: Optional[MetricsRegistry] = None,
                 kernel: str = "object") -> None:
        if replication < 1:
            raise ValueError(f"replication must be >= 1: {replication}")
        if health_threshold < 1:
            raise ValueError(
                f"health_threshold must be >= 1: {health_threshold}")
        self.shard_id = shard_id
        self.fault_injector = fault_injector
        self.metrics = metrics
        # Replicas share the shard's (read-only) index and the cluster's
        # thread pool; each gets a private engine so caches and per-replica
        # metrics stay independent, as they would be on separate machines.
        # Under the columnar kernel the shard is compiled ONCE and the
        # frozen snapshot shared — replicating arrays buys nothing.
        snapshot = (ColumnarSnapshot(index) if kernel == "columnar"
                    and not isinstance(index, MutableDesksIndex) else None)
        self.replicas: List[Replica] = [
            Replica(shard_id, replica_id,
                    QueryEngine(index, num_workers=1, mode=mode,
                                cache_capacity=cache_capacity,
                                executor=executor, kernel=kernel,
                                snapshot=snapshot),
                    health_threshold)
            for replica_id in range(replication)
        ]
        self._rotation = 0
        self._lock = make_lock("cluster.replica_set")
        register_shared(self, "cluster.replica_set")

    def __len__(self) -> int:
        return len(self.replicas)

    def _attempt_order(self) -> List[Replica]:
        """Healthy replicas first (rotating start), unhealthy last.

        Quarantined replicas are excluded outright — an unhealthy replica
        gets recovery probes because transient faults heal, but detected
        corruption does not heal by retrying."""
        with self._lock:
            start = self._rotation
            self._rotation = (self._rotation + 1) % len(self.replicas)
        rotated = [r for r in (self.replicas[start:] + self.replicas[:start])
                   if not r.quarantined]
        return ([r for r in rotated if r.healthy]
                + [r for r in rotated if not r.healthy])

    def execute(self, query: DirectionalQuery,
                timeout: Optional[float] = None,
                ) -> Tuple[ServiceResponse, int]:
        """Serve ``query``, failing over across replicas.

        Returns ``(response, retries)`` where ``retries`` counts failed
        attempts before the one that succeeded.  Raises
        :class:`ShardUnavailableError` when every replica fails.
        """
        last_error: Optional[BaseException] = None
        attempts = 0
        for replica in self._attempt_order():
            attempts += 1
            try:
                if self.fault_injector is not None:
                    self.fault_injector.before_call(
                        self.shard_id, replica.replica_id)
                response = replica.engine.execute(query, timeout)
            except PageCorruptionError as exc:
                self._quarantine(replica, str(exc))
                last_error = exc
                continue
            except Exception as exc:  # desks: noqa-DAL011 - converted to failover; cause kept in last_error
                replica.mark_failure()
                last_error = exc
                if self.metrics is not None:
                    self.metrics.counter(
                        "cluster_replica_failures_total").increment()
                continue
            if response.degraded:
                # The engine already caught the corruption and refused to
                # answer; treat it exactly like the raised form — park the
                # replica and fail over to one with intact pages.
                cause = response.failure_cause or "degraded response"
                self._quarantine(replica, cause)
                last_error = PageCorruptionError(-1, cause, None)
                continue
            replica.mark_success()
            return response, attempts - 1
        raise ShardUnavailableError(self.shard_id, attempts, last_error)

    def _quarantine(self, replica: Replica, cause: str) -> None:
        replica.quarantine(cause)
        if self.metrics is not None:
            self.metrics.counter(
                "cluster_replicas_quarantined_total").increment()

    def quarantined_replicas(self) -> List[int]:
        """Replica ids currently parked for corruption."""
        return [r.replica_id for r in self.replicas if r.quarantined]

    def health_summary(self) -> List[dict]:
        """Per-replica health for stats/CLI output."""
        return [
            {
                "replica_id": r.replica_id,
                "healthy": r.healthy,
                "consecutive_failures": r.consecutive_failures,
                "total_failures": r.total_failures,
            }
            for r in self.replicas
        ]

    def close(self) -> None:
        """Close every replica's engine."""
        for replica in self.replicas:
            replica.engine.close()
