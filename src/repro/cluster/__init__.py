"""Sharded scatter-gather serving: horizontal partitioning for DESKS.

PR 1's :class:`~repro.service.QueryEngine` serves one index on one node;
this package partitions a collection across ``S`` independent DESKS shards
and answers queries by scatter-gather, exploiting the paper's geometry at
the cluster level: a query's sector ``(q, [alpha, beta])`` proves entire
shards irrelevant before dispatch, the same way Lemmas 2-4 prune
sub-regions inside one index.

* :mod:`~repro.cluster.partition` — pluggable partitioners (``grid``,
  ``angular``, ``hash``) producing shard MBRs and keyword document
  frequencies;
* :mod:`~repro.cluster.router` — :class:`ShardRouter`: sector pruning,
  MINDIST + cardinality ordering, wave dispatch on a shared pool, merge
  with early termination;
* :mod:`~repro.cluster.replica` — R-way replication, health state,
  failover, and the :class:`FaultInjector` that makes degraded modes
  testable;
* :mod:`~repro.cluster.stats` — routing counters and a whole-deployment
  metrics snapshot on the PR-1 :class:`~repro.service.MetricsRegistry`;
* :mod:`~repro.cluster.transport` — the :class:`ShardTransport` protocol
  that lets :class:`~repro.net.RemoteReplicaSet` substitute server
  processes for in-process replicas without the router noticing.

See ``docs/CLUSTER.md`` for the architecture, the pruning rule, and the
replication/failover semantics.
"""

from .partition import (
    PARTITIONERS,
    ClusterLayout,
    ShardSpec,
    build_layout,
    shard_collection,
)
from .replica import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    Replica,
    ReplicaSet,
    ShardUnavailableError,
)
from .router import ClusterResponse, Shard, ShardRouter, spec_from_collection
from .stats import SHARD_BUCKETS, ClusterStats
from .transport import ReplicaState, ShardTransport

__all__ = [
    "PARTITIONERS",
    "SHARD_BUCKETS",
    "ClusterLayout",
    "ClusterResponse",
    "ClusterStats",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "Replica",
    "ReplicaSet",
    "ReplicaState",
    "Shard",
    "ShardRouter",
    "ShardSpec",
    "ShardTransport",
    "ShardUnavailableError",
    "build_layout",
    "shard_collection",
    "spec_from_collection",
]
