"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``generate``
    Write a synthetic POI dataset (Table II preset or custom) to CSV.
``stats``
    Print Table II-style statistics for a POI CSV.
``build``
    Build a DESKS index over a POI CSV and save it to a directory.
``query``
    Answer one direction-aware query, building the index on the fly from
    a CSV or loading a saved one with ``--index``.  Queries come either
    from flags (``-x -y --keywords ...``) or from DQL statements
    (:mod:`repro.lang`): ``-e "SELECT 5 NEAR (10.0, 20.0) MATCHING
    'cafe'"`` executes statements, ``--repl`` reads them from stdin, and
    ``--transport socket`` runs them against an in-process
    :class:`~repro.net.ShardServer` across a real loopback socket.
    ``--json`` emits the uniform result envelope; ``--metrics-json``
    snapshots the backend's ``SHOW METRICS`` table.
``explain``
    ``EXPLAIN ANALYZE`` one query: the plan (quadrant decomposition,
    armed pruning lemmas), the span tree of what actually ran, and a
    reconciliation of span counters against the search's independent
    ``SearchStats``/``IOStats`` (exit 1 on any mismatch).
``trace``
    Run one query with :mod:`repro.trace` active and print the span
    tree; ``--json`` exports it, ``--engine`` routes through the
    serving layer so engine-level spans (cache, queue wait) appear too.
``bench``
    Quick single-machine comparison of DESKS vs the baselines on a CSV.
``serve-bench``
    Drive the concurrent serving layer (:mod:`repro.service`) with a
    closed-loop multi-client workload, sweeping client counts and
    printing QPS / cache-hit-rate / tail-latency per step.
``cluster-bench``
    Drive the sharded scatter-gather layer (:mod:`repro.cluster`):
    sweep shard counts under a chosen partitioner, verify answers
    against the unsharded index, and report shard-pruning rates,
    latency, and (with replication and ``--fault-rate``) failover
    behaviour.
``shard-server``
    Serve one saved (or durable) shard's search/health/stats RPCs on a
    TCP socket (:mod:`repro.net`); prints ``SHARD-SERVER READY host
    port`` once accepting, which :class:`~repro.net.ClusterLauncher`
    waits for.
``serve``
    Bring a whole saved deployment online: launch one ``shard-server``
    process per (shard, replica), connect a remote
    :class:`~repro.cluster.ShardRouter` over them, and serve clients
    through the asyncio front door until interrupted.
``scrub``
    Verify a saved index, sharded deployment, or durable-index directory
    against its checksum manifests (and WAL, when present); exit 1 on
    any corruption.
``chaos-bench``
    Run the durability chaos harness (:mod:`repro.durability`):
    randomized crash/recovery trials, page-corruption injections, and a
    WAL-overhead measurement, optionally written to a JSON report.
"""

from __future__ import annotations

import argparse
import math
import random
import sys
import time
from typing import List, Optional

from .baselines import FilterThenVerify, IRTree, MIR2Tree
from .core import (
    DesksIndex,
    DesksSearcher,
    DirectionalQuery,
    MatchMode,
    PruningMode,
    load_index,
    save_index,
)
from .datasets import (
    SyntheticConfig,
    dataset_statistics,
    format_table2,
    generate,
    load_csv,
    load_preset,
    save_csv,
)
from .storage import SearchStats


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DESKS: direction-aware spatial keyword search "
                    "(ICDE 2012 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="write a synthetic POI CSV")
    p_gen.add_argument("output", help="output CSV path")
    p_gen.add_argument("--preset", choices=["CA", "VA", "CN"],
                       help="Table II preset (overrides size options)")
    p_gen.add_argument("--scale", type=float, default=100.0,
                       help="preset scale divisor (default 100)")
    p_gen.add_argument("--pois", type=int, default=10_000)
    p_gen.add_argument("--terms", type=int, default=5_000)
    p_gen.add_argument("--terms-per-poi", type=float, default=4.0)
    p_gen.add_argument("--seed", type=int, default=7)

    p_stats = sub.add_parser("stats", help="Table II statistics for a CSV")
    p_stats.add_argument("input", help="POI CSV path")

    p_build = sub.add_parser(
        "build", help="build a DESKS index and save it to a directory")
    p_build.add_argument("input", help="POI CSV path")
    p_build.add_argument("output", help="index directory to create")
    p_build.add_argument("--bands", type=int, default=None)
    p_build.add_argument("--wedges", type=int, default=None)

    p_query = sub.add_parser(
        "query", help="answer one query over a CSV or saved index")
    _add_query_args(p_query)
    p_query.add_argument("-e", "--statement", action="append",
                         metavar="DQL", default=None,
                         help="execute a DQL statement (repeatable; "
                              "see docs/LANG.md for the grammar)")
    p_query.add_argument("--repl", action="store_true",
                         help="read DQL statements from stdin "
                              "(interactive when stdin is a tty)")
    p_query.add_argument("--transport", choices=["inproc", "socket"],
                         default="inproc",
                         help="inproc: a local query engine; socket: an "
                              "in-process ShardServer over a real "
                              "loopback socket")
    p_query.add_argument("--json", action="store_true",
                         help="emit results as JSON instead of text")
    p_query.add_argument("--metrics-json", metavar="PATH", default=None,
                         help="write the backend's SHOW METRICS table "
                              "to PATH as JSON")
    p_query.add_argument("--timeout-ms", type=float, default=None,
                         help="deadline applied to every statement "
                              "(flag-built queries included)")

    p_explain = sub.add_parser(
        "explain", help="EXPLAIN ANALYZE one query: plan, span tree, "
                        "and counter reconciliation")
    _add_query_args(p_explain)
    p_explain.add_argument("--json", metavar="PATH", default=None,
                           help="write the full report to PATH as JSON")

    p_trace = sub.add_parser(
        "trace", help="run one query traced and print/export the span tree")
    _add_query_args(p_trace)
    p_trace.add_argument("--engine", action="store_true",
                         help="route through the serving layer "
                              "(adds engine.* spans: cache, queue wait)")
    p_trace.add_argument("--json", metavar="PATH", default=None,
                         help="write the trace to PATH as JSON")

    p_bench = sub.add_parser(
        "bench", help="compare DESKS vs baselines on a CSV")
    p_bench.add_argument("input", help="POI CSV path")
    p_bench.add_argument("--queries", type=int, default=50)
    p_bench.add_argument("--width", type=float, default=60.0,
                         help="direction width in degrees")
    p_bench.add_argument("-k", type=int, default=10)
    p_bench.add_argument("--seed", type=int, default=0)

    p_serve = sub.add_parser(
        "serve-bench",
        help="closed-loop load test of the concurrent serving layer")
    p_serve.add_argument("input", help="POI CSV path")
    p_serve.add_argument("--clients", type=int, nargs="+",
                         default=[1, 2, 4, 8],
                         help="client counts to sweep (default: 1 2 4 8)")
    p_serve.add_argument("--requests", type=int, default=200,
                         help="requests per client per step (default 200)")
    p_serve.add_argument("--queries", type=int, default=50,
                         help="distinct queries in the workload")
    p_serve.add_argument("--repeats", type=int, default=4,
                         help="replays of the query set (cache warmth)")
    p_serve.add_argument("--keywords", type=int, default=2,
                         help="keywords per generated query")
    p_serve.add_argument("--width", type=float, default=60.0,
                         help="direction width in degrees")
    p_serve.add_argument("-k", type=int, default=10)
    p_serve.add_argument("--workers", type=int, default=8,
                         help="engine worker threads")
    p_serve.add_argument("--cache", type=int, default=1024,
                         help="result-cache capacity (entries)")
    p_serve.add_argument("--timeout-ms", type=float, default=None,
                         help="per-query deadline (graceful degradation)")
    p_serve.add_argument("--think-ms", type=float, default=2.0,
                         help="client think time between requests")
    p_serve.add_argument("--inserts", type=int, default=0,
                         help="POIs inserted between sweep steps "
                              "(exercises cache invalidation)")
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--transport", choices=["inproc", "socket"],
                         default="inproc",
                         help="inproc: call the engine directly; socket: "
                              "drive a ShardServer over the wire protocol")
    p_serve.add_argument("--kernel", choices=["object", "columnar"],
                         default="object",
                         help="search kernel: object-path DesksSearcher "
                              "or the columnar batch kernel (static "
                              "index, inproc only)")
    p_serve.add_argument("--batch", type=int, default=1,
                         help="queries per client batch (submit_batch "
                              "path when > 1)")
    p_serve.add_argument("--metrics", action="store_true",
                         help="dump the full metrics registry at the end")
    p_serve.add_argument("--metrics-json", metavar="PATH", default=None,
                         help="write the metrics registry to PATH as JSON")

    p_cluster = sub.add_parser(
        "cluster-bench",
        help="sharded scatter-gather sweep with equivalence checking")
    p_cluster.add_argument("input", help="POI CSV path")
    p_cluster.add_argument("--shards", type=int, nargs="+",
                           default=[1, 2, 4, 8],
                           help="shard counts to sweep (default: 1 2 4 8)")
    p_cluster.add_argument("--partitioner", default="grid",
                           choices=["grid", "angular", "hash"])
    p_cluster.add_argument("--replicas", type=int, default=1,
                           help="replicas per shard (default 1)")
    p_cluster.add_argument("--fault-rate", type=float, default=0.0,
                           help="injected error probability on replica 0 "
                                "of every shard (needs --replicas >= 2 "
                                "for exact answers)")
    p_cluster.add_argument("--fanout", type=int, default=4,
                           help="max shards dispatched per wave")
    p_cluster.add_argument("--workers", type=int, default=8,
                           help="shared pool worker threads")
    p_cluster.add_argument("--queries", type=int, default=100,
                           help="random queries per sweep step")
    p_cluster.add_argument("--keywords", type=int, default=2,
                           help="keywords per generated query")
    p_cluster.add_argument("--width", type=float, default=90.0,
                           help="direction width in degrees")
    p_cluster.add_argument("-k", type=int, default=10)
    p_cluster.add_argument("--seed", type=int, default=0)
    p_cluster.add_argument("--transport", choices=["inproc", "socket"],
                           default="inproc",
                           help="inproc: replicas on a shared thread "
                                "pool; socket: one real shard-server "
                                "process per (shard, replica)")
    p_cluster.add_argument("--kernel", choices=["object", "columnar"],
                           default="object",
                           help="per-shard search kernel (columnar "
                                "requires --transport inproc)")
    p_cluster.add_argument("--no-verify", action="store_true",
                           help="skip the unsharded equivalence check")
    p_cluster.add_argument("--metrics-json", metavar="PATH", default=None,
                           help="write the cluster metrics snapshot "
                                "(router + every shard/replica) to PATH")

    p_shard = sub.add_parser(
        "shard-server",
        help="serve one saved/durable shard's RPCs on a TCP socket")
    p_shard.add_argument("--directory", required=True,
                         help="saved index or durable-index directory")
    p_shard.add_argument("--host", default="127.0.0.1")
    p_shard.add_argument("--port", type=int, default=0,
                         help="0 picks an ephemeral port (announced on "
                              "the READY line)")
    p_shard.add_argument("--shard-id", type=int, default=0)
    p_shard.add_argument("--workers", type=int, default=4,
                         help="engine worker threads")
    p_shard.add_argument("--max-inflight", type=int, default=None,
                         help="admission limit before OVERLOAD "
                              "(default: 2x workers)")
    p_shard.add_argument("--cache", type=int, default=128,
                         help="result-cache capacity (entries)")
    p_shard.add_argument("--mode", choices=["R", "D", "RD"], default="RD")

    p_net_serve = sub.add_parser(
        "serve",
        help="launch shard servers for a saved deployment and serve "
             "clients through the asyncio front door")
    p_net_serve.add_argument("deployment",
                             help="sharded deployment directory "
                                  "(ShardRouter.save output)")
    p_net_serve.add_argument("--host", default="127.0.0.1")
    p_net_serve.add_argument("--port", type=int, default=0,
                             help="front-door port (0: ephemeral)")
    p_net_serve.add_argument("--replicas", type=int, default=1,
                             help="server processes per shard")
    p_net_serve.add_argument("--workers", type=int, default=8,
                             help="front-door worker threads")
    p_net_serve.add_argument("--shard-workers", type=int, default=4,
                             help="worker threads per shard server")
    p_net_serve.add_argument("--max-inflight", type=int, default=64,
                             help="front-door admission limit before "
                                  "OVERLOAD")
    p_net_serve.add_argument("--fanout", type=int, default=4,
                             help="max shards dispatched per wave")
    p_net_serve.add_argument("--timeout-ms", type=float, default=None,
                             help="default per-query deadline")
    p_net_serve.add_argument("--hedge-ms", type=float, default=None,
                             help="hedge delay: fire a straggling "
                                  "shard request at the next replica "
                                  "after this many ms (default: off)")
    p_net_serve.add_argument("--breaker-threshold", type=int, default=None,
                             help="consecutive failures before a "
                                  "replica's circuit opens (default: "
                                  "the health threshold)")
    p_net_serve.add_argument("--breaker-reset-ms", type=float,
                             default=5000.0,
                             help="ms an open circuit waits before a "
                                  "half-open trial")
    p_net_serve.add_argument("--retry-budget", type=float, default=10.0,
                             help="retry token budget shared across "
                                  "shards (failover + hedges)")
    p_net_serve.add_argument("--probe-ms", type=float, default=2000.0,
                             help="background health-probe interval "
                                  "for unavailable replicas "
                                  "(0: disable)")

    p_scrub = sub.add_parser(
        "scrub", help="verify a saved/durable directory's checksums")
    p_scrub.add_argument("directory",
                         help="saved index, sharded deployment, or "
                              "durable index directory")

    p_chaos = sub.add_parser(
        "chaos-bench",
        help="crash/corruption chaos trials + WAL overhead measurement")
    p_chaos.add_argument("--pois", type=int, default=400,
                         help="base collection size (default 400)")
    p_chaos.add_argument("--ops", type=int, default=120,
                         help="mutations per workload script")
    p_chaos.add_argument("--crash-trials", type=int, default=120,
                         help="randomized kill points (default 120)")
    p_chaos.add_argument("--corruption-trials", type=int, default=100,
                         help="randomized page injections (default 100)")
    p_chaos.add_argument("--seed", type=int, default=0)
    p_chaos.add_argument("--sync", choices=["always", "batch", "checkpoint"],
                         default="batch", help="WAL sync policy")
    p_chaos.add_argument("--json", metavar="PATH", default=None,
                         help="write the full report to PATH as JSON")

    p_lint = sub.add_parser(
        "lint", help="run the project-invariant analyzer (DAL rules)")
    p_lint.add_argument("targets", nargs="+",
                        help="files or directories to lint (e.g. src/)")
    p_lint.add_argument("--json", metavar="PATH", default=None,
                        help="write the full report to PATH as JSON "
                             "('-' for stdout)")
    p_lint.add_argument("--rules", metavar="CODES", default=None,
                        help="comma-separated DAL codes to run "
                             "(default: all)")
    p_lint.add_argument("--show-suppressed", action="store_true",
                        help="also print findings silenced by "
                             "'desks: noqa-DALxxx' comments")
    p_lint.add_argument("--graph", metavar="BASE", default=None,
                        help="also export the import graph of the lint "
                             "targets as BASE.json and BASE.dot")
    p_lint.add_argument("--contract", metavar="PATH", default=None,
                        help="architecture contract TOML to check "
                             "against (default: the packaged "
                             "ARCHITECTURE.toml)")
    return parser


def _add_query_args(p: argparse.ArgumentParser) -> None:
    """The single-query argument set shared by query/explain/trace."""
    p.add_argument("input", help="POI CSV path or (with --index) "
                                 "a saved index directory")
    p.add_argument("--index", action="store_true",
                   help="treat input as a saved index directory")
    p.add_argument("-x", type=float, default=None)
    p.add_argument("-y", type=float, default=None)
    p.add_argument("--alpha", type=float, default=0.0,
                   help="lower direction bound in degrees")
    p.add_argument("--beta", type=float, default=360.0,
                   help="upper direction bound in degrees")
    p.add_argument("--keywords", nargs="+", default=None)
    p.add_argument("-k", type=int, default=10)
    p.add_argument("--mode", choices=["R", "D", "RD"], default="RD")
    p.add_argument("--match-any", action="store_true",
                   help="match POIs containing ANY keyword "
                        "(default: ALL)")
    p.add_argument("--bands", type=int, default=None)
    p.add_argument("--wedges", type=int, default=None)


def _load_query_target(args: argparse.Namespace) -> DesksIndex:
    """The index named by a query-style command's ``input`` argument."""
    if args.index:
        return load_index(args.input)
    return DesksIndex(load_csv(args.input), num_bands=args.bands,
                      num_wedges=args.wedges)


def _parse_query(args: argparse.Namespace) -> DirectionalQuery:
    """Build the DirectionalQuery a query-style command describes."""
    missing = [name for name, value in (("-x", args.x), ("-y", args.y),
                                        ("--keywords", args.keywords))
               if value is None]
    if missing:
        raise ValueError(
            f"{', '.join(missing)} required (or use -e/--repl with a DQL "
            "statement)")
    mode = MatchMode.ANY if args.match_any else MatchMode.ALL
    return DirectionalQuery.make(
        args.x, args.y, math.radians(args.alpha), math.radians(args.beta),
        args.keywords, args.k, match_mode=mode)


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.preset:
        collection = load_preset(args.preset, scale=args.scale)
    else:
        collection = generate(SyntheticConfig(
            name="custom", num_pois=args.pois,
            num_unique_terms=args.terms,
            avg_terms_per_poi=args.terms_per_poi, seed=args.seed))
    save_csv(collection, args.output)
    print(f"wrote {len(collection)} POIs to {args.output}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    collection = load_csv(args.input)
    print(format_table2([dataset_statistics(args.input, collection)]))
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    collection = load_csv(args.input)
    started = time.perf_counter()
    index = DesksIndex(collection, num_bands=args.bands,
                       num_wedges=args.wedges)
    save_index(index, args.output)
    elapsed = time.perf_counter() - started
    print(f"built and saved index over {len(collection)} POIs "
          f"(N={index.num_bands}, M={index.num_wedges}) to {args.output} "
          f"in {elapsed:.2f} s")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.statement or args.repl or args.json or args.metrics_json:
        return _cmd_query_dql(args)
    started = time.perf_counter()
    index = _load_query_target(args)
    collection = index.collection
    build_ms = (time.perf_counter() - started) * 1000.0
    searcher = DesksSearcher(index)
    query = _parse_query(args)
    stats = SearchStats()
    started = time.perf_counter()
    result = searcher.search(query, PruningMode[args.mode], stats)
    query_ms = (time.perf_counter() - started) * 1000.0
    print(f"index: N={index.num_bands} M={index.num_wedges} "
          f"({build_ms:.0f} ms build); query: {query_ms:.2f} ms, "
          f"{stats.pois_examined} POIs examined")
    from .core import CardinalityEstimator

    print(CardinalityEstimator(collection).summary(query))
    if not result.entries:
        print("no answers in the given direction with those keywords")
    for rank, entry in enumerate(result, start=1):
        poi = collection[entry.poi_id]
        bearing = (math.degrees(
            query.location.direction_to(poi.location))
            if not poi.location.coincides(query.location) else 0.0)
        print(f"{rank:3}. poi#{entry.poi_id:<8} dist={entry.distance:10.2f}"
              f"  bearing={bearing:6.1f} deg  "
              f"{' '.join(sorted(poi.keywords)[:6])}")
    return 0


def _query_backend(args: argparse.Namespace, index):
    """The DQL backend named by ``--transport``, plus its closer.

    ``inproc`` wraps the index in a :class:`~repro.service.QueryEngine`
    (so ``TIMEOUT``/``SHOW METRICS`` mean something); ``socket`` starts
    an in-process :class:`~repro.net.ShardServer` and drives it through
    a pooled client over a real loopback socket — every statement then
    exercises the full wire path.
    """
    from .lang import EngineBackend, SocketBackend

    if args.transport == "socket":
        from .net import RemoteShardClient, ShardServer

        server = ShardServer(index, num_workers=2).start()
        client = RemoteShardClient(server.address)

        def close() -> None:
            client.close()
            server.stop()

        return SocketBackend(client), close
    from .service import QueryEngine

    engine = QueryEngine(index, num_workers=2)
    return EngineBackend(engine), engine.close


def _cmd_query_dql(args: argparse.Namespace) -> int:
    """The DQL side of ``repro query``: ``-e``, ``--repl``, ``--json``."""
    import json

    from .lang import DqlError, DqlExecutor, DqlSyntaxError, plan_from_query

    timeout = (args.timeout_ms / 1000.0
               if args.timeout_ms is not None else None)
    statements: List[object] = list(args.statement or [])
    if not statements and not args.repl:
        # Flag-built query routed through the language layer so --json
        # and --metrics-json get the same envelope as -e statements.
        statements = [plan_from_query(_parse_query(args),
                                      mode=PruningMode[args.mode])]
    index = _load_query_target(args)
    backend, close = _query_backend(args, index)
    executor = DqlExecutor(backend)
    exit_code = 0
    outcomes = []
    try:
        for statement in statements:
            try:
                outcomes.append(executor.execute(statement, timeout))
            except DqlSyntaxError as exc:
                print(exc.render(), file=sys.stderr)
                return 2
            except DqlError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 1
        if args.repl:
            exit_code = _run_repl(executor, timeout)
        if args.json:
            print(json.dumps([outcome.to_dict() for outcome in outcomes],
                             indent=2, sort_keys=True))
        else:
            for outcome in outcomes:
                print(outcome.render())
        if args.metrics_json:
            _write_metrics_json(executor.execute("SHOW METRICS").table,
                                args.metrics_json)
    finally:
        close()
    return exit_code


def _run_repl(executor, timeout: Optional[float]) -> int:
    """Read DQL statements from stdin until EOF or ``EXIT``.

    Output is history-free and timing-free: each statement's outcome
    renders deterministically (errors included, on stdout), so a CLI
    test can pipe a script in and golden-file what comes out.  The
    prompt is written only when stdin is a tty.
    """
    from .lang import DqlError, DqlSyntaxError

    interactive = sys.stdin.isatty()
    if interactive:
        print("DQL — SELECT/EXPLAIN/SHOW; EXIT (or EOF) to leave")
    while True:
        if interactive:
            sys.stdout.write("dql> ")
            sys.stdout.flush()
        line = sys.stdin.readline()
        if not line:
            break
        line = line.strip()
        if not line or line.startswith("--"):
            continue
        if line.upper() in ("EXIT", "QUIT"):
            break
        try:
            print(executor.execute(line, timeout).render())
        except DqlSyntaxError as exc:
            print(exc.render())
        except DqlError as exc:
            print(f"error: {exc}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from .trace import explain

    index = _load_query_target(args)
    query = _parse_query(args)
    report = explain(index, query, mode=args.mode)
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print(f"wrote explain report to {args.json}")
    if not report.reconciled:
        print("error: span counters do not reconcile with SearchStats/"
              "IOStats — the trace is misattributing cost",
              file=sys.stderr)
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .trace import Tracer

    index = _load_query_target(args)
    query = _parse_query(args)
    tracer = Tracer()
    if args.engine:
        from .service import QueryEngine

        with QueryEngine(index, mode=PruningMode[args.mode]) as engine, \
                tracer.activate():
            engine.submit(query).result()
    else:
        searcher = DesksSearcher(index)
        with tracer.activate():
            searcher.search(query, PruningMode[args.mode])
    print(tracer.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(tracer.to_json())
            handle.write("\n")
        print(f"wrote trace to {args.json}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import (
        baseline_search_fn,
        desks_search_fn,
        generate_queries,
        run_workload,
    )

    collection = load_csv(args.input)
    queries = generate_queries(
        collection, args.queries, num_keywords=2,
        direction_width=math.radians(args.width), k=args.k, seed=args.seed)
    searcher = DesksSearcher(DesksIndex(collection))
    methods = [
        ("DESKS", desks_search_fn(searcher, PruningMode.RD)),
        ("MIR2-tree", baseline_search_fn(MIR2Tree(collection))),
        ("LkT", baseline_search_fn(IRTree(collection))),
        ("filter-verify", baseline_search_fn(FilterThenVerify(collection))),
    ]
    print(f"{'method':<16}{'avg ms':>10}{'avg POIs':>12}")
    for name, fn in methods:
        run = run_workload(name, fn, queries)
        print(f"{name:<16}{run.avg_ms:>10.3f}{run.avg_pois_examined:>12.1f}")
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from .bench import generate_queries, repeated_stream
    from .core import MutableDesksIndex
    from .service import QueryEngine, run_closed_loop

    collection = load_csv(args.input)
    base = generate_queries(
        collection, args.queries, num_keywords=args.keywords,
        direction_width=math.radians(args.width), k=args.k, seed=args.seed)
    stream = repeated_stream(base, args.repeats, seed=args.seed)
    timeout = (args.timeout_ms / 1000.0
               if args.timeout_ms is not None else None)
    if args.kernel == "columnar":
        # The columnar snapshot is frozen at compile time, so the sweep
        # serves a static index: no insert churn, no wire transport yet.
        if args.inserts:
            print("error: --kernel columnar serves a frozen snapshot; "
                  "--inserts requires --kernel object", file=sys.stderr)
            return 2
        if args.transport == "socket":
            print("error: --kernel columnar requires --transport inproc "
                  "(shard servers run the object path)", file=sys.stderr)
            return 2
        index = DesksIndex(collection)
    else:
        index = MutableDesksIndex(collection)
    if args.transport == "socket":
        return _serve_bench_socket(args, index, stream, timeout,
                                   len(collection), len(base))
    rng = random.Random(args.seed)
    mbr = collection.mbr
    with QueryEngine(index, num_workers=args.workers,
                     cache_capacity=args.cache,
                     default_timeout=timeout,
                     kernel=args.kernel) as engine:
        print(f"{len(collection)} POIs, {len(base)} distinct queries x "
              f"{args.repeats} repeats, {args.requests} req/client, "
              f"think={args.think_ms:.1f} ms, kernel={args.kernel}, "
              f"batch={args.batch}")
        for num_clients in args.clients:
            report = run_closed_loop(
                engine, stream, num_clients,
                requests_per_client=args.requests,
                think_time=args.think_ms / 1000.0,
                batch_size=args.batch)
            print(report.summary())
            if report.first_error:
                print(f"  first error: {report.first_error}",
                      file=sys.stderr)
                return 1
            for _ in range(args.inserts):
                index.insert(rng.uniform(mbr.min_x, mbr.max_x),
                             rng.uniform(mbr.min_y, mbr.max_y),
                             ["serve", "bench"])
        if args.metrics:
            print()
            print(engine.metrics.render())
        if args.metrics_json:
            _write_metrics_json(engine.metrics.to_dict(), args.metrics_json)
    return 0


def _serve_bench_socket(args: argparse.Namespace, index, stream,
                        timeout: Optional[float], num_pois: int,
                        num_queries: int) -> int:
    """The serve-bench sweep over the wire protocol.

    The server runs on a background thread of this process (same index,
    same worker count) and every request crosses a real loopback socket
    through :mod:`repro.net.protocol` — the measured delta against
    ``--transport inproc`` is the framing + socket cost.
    """
    from .net import RemoteShardClient, ShardServer, run_network_closed_loop

    if args.inserts:
        print("error: --inserts requires --transport inproc (mutations "
              "are not part of the wire protocol yet)", file=sys.stderr)
        return 2
    with ShardServer(index, num_workers=args.workers,
                     cache_capacity=args.cache).start() as server, \
            RemoteShardClient(server.address) as client:
        print(f"{num_pois} POIs, {num_queries} distinct queries x "
              f"{args.repeats} repeats, {args.requests} req/client, "
              f"think={args.think_ms:.1f} ms, transport=socket "
              f"via {server.address[0]}:{server.address[1]}")
        for num_clients in args.clients:
            report = run_network_closed_loop(
                lambda query: client.search(query, budget=timeout),
                stream, num_clients,
                requests_per_client=args.requests,
                think_time=args.think_ms / 1000.0)
            print(report.summary())
            if report.first_error:
                print(f"  first error: {report.first_error}",
                      file=sys.stderr)
                return 1
        if args.metrics:
            print()
            print(server.metrics.render())
        if args.metrics_json:
            _write_metrics_json(server.metrics.to_dict(),
                                args.metrics_json)
    return 0


def _write_metrics_json(snapshot: dict, path: str) -> None:
    import json

    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote metrics to {path}")


def _cmd_cluster_bench(args: argparse.Namespace) -> int:
    from .bench import generate_queries
    from .cluster import FaultInjector, ShardRouter

    collection = load_csv(args.input)
    queries = generate_queries(
        collection, args.queries, num_keywords=args.keywords,
        direction_width=math.radians(args.width), k=args.k, seed=args.seed)
    reference = None
    if not args.no_verify:
        reference = DesksSearcher(DesksIndex(collection))

    injector = None
    if args.fault_rate > 0.0:
        if args.transport == "socket":
            print("error: --fault-rate requires --transport inproc (the "
                  "socket transport's faults are real process kills; see "
                  "the network benchmarks)", file=sys.stderr)
            return 2
        injector = FaultInjector(seed=args.seed)
        injector.set_fault(replica_id=0, error_rate=args.fault_rate)
    if args.kernel == "columnar" and args.transport == "socket":
        print("error: --kernel columnar requires --transport inproc "
              "(shard servers run the object path)", file=sys.stderr)
        return 2

    print(f"{len(collection)} POIs, {len(queries)} queries, "
          f"partitioner={args.partitioner}, replicas={args.replicas}, "
          f"fault_rate={args.fault_rate}, transport={args.transport}, "
          f"kernel={args.kernel}")
    print(f"{'shards':>7}{'avg ms':>10}{'pruned %':>10}{'retries':>9}"
          f"{'degraded':>10}{'mismatches':>12}")
    exit_code = 0
    last_snapshot = None
    for num_shards in args.shards:
        with _cluster_bench_router(args, collection, num_shards,
                                   injector) as router:
            row = _cluster_measure(router, queries, reference)
            latency, retries, degraded, mismatches, pruned, total = row
            print(f"{num_shards:>7}"
                  f"{1000.0 * latency / len(queries):>10.3f}"
                  f"{100.0 * pruned / total:>10.1f}"
                  f"{int(retries):>9}{int(degraded):>10}"
                  f"{int(mismatches):>12}")
            if mismatches:
                print(f"  ERROR: {int(mismatches)} sharded answers "
                      "diverged from the unsharded index",
                      file=sys.stderr)
                exit_code = 1
            last_snapshot = router.metrics_snapshot()
    if args.metrics_json and last_snapshot is not None:
        _write_metrics_json(last_snapshot, args.metrics_json)
    return exit_code


def _cluster_measure(router, queries, reference):
    """Run the sweep's query loop; returns the aggregate row counters."""
    latency = retries = degraded = mismatches = 0.0
    pruned = total = 0
    for query in queries:
        response = router.execute(query)
        latency += response.latency_seconds
        retries += response.replica_retries
        degraded += 1 if response.degraded else 0
        pruned += (response.shards_pruned
                   + response.shards_keyword_pruned
                   + response.shards_skipped)
        total += response.shards_total
        if reference is not None and not response.degraded:
            expected = reference.search(query)
            if [(e.poi_id, e.distance)
                    for e in response.result.entries] != \
                    [(e.poi_id, e.distance)
                     for e in expected.entries]:
                mismatches += 1
    return latency, retries, degraded, mismatches, pruned, total


def _cluster_bench_router(args: argparse.Namespace, collection,
                          num_shards: int, injector):
    """A router for one sweep step — in-process or over real servers.

    For ``--transport socket`` the step builds and saves the sharded
    deployment, launches one ``shard-server`` process per (shard,
    replica), and returns a remote router over their sockets; teardown
    (processes, temp dir) is chained onto the router's ``close()``.
    """
    from .cluster import ShardRouter

    if args.transport == "inproc":
        return ShardRouter(collection, num_shards=num_shards,
                           partitioner=args.partitioner,
                           replication=args.replicas,
                           num_workers=args.workers,
                           max_fanout=args.fanout,
                           fault_injector=injector,
                           kernel=args.kernel)

    import contextlib
    import tempfile

    from .net import ClusterLauncher, connect_router

    cleanup = contextlib.ExitStack()
    try:
        deploy = cleanup.enter_context(tempfile.TemporaryDirectory())
        with ShardRouter(collection, num_shards=num_shards,
                         partitioner=args.partitioner) as builder:
            builder.save(deploy)
        launcher = cleanup.enter_context(
            ClusterLauncher(deploy, replication=args.replicas))
        addresses = launcher.start()
        router = connect_router(deploy, addresses,
                                num_workers=args.workers,
                                max_fanout=args.fanout)
    except Exception:
        cleanup.close()
        raise
    inner_close = router.close

    def close_all() -> None:
        inner_close()
        cleanup.close()

    router.close = close_all
    return router


def _cmd_shard_server(args: argparse.Namespace) -> int:
    from .net import run_shard_server

    return run_shard_server(
        args.directory, host=args.host, port=args.port,
        shard_id=args.shard_id, num_workers=args.workers,
        max_inflight=args.max_inflight, cache_capacity=args.cache,
        mode=PruningMode[args.mode])


def _cmd_serve(args: argparse.Namespace) -> int:
    from .net import (
        ClusterFrontend,
        ClusterLauncher,
        HedgePolicy,
        ResilienceConfig,
        connect_router,
    )

    timeout = (args.timeout_ms / 1000.0
               if args.timeout_ms is not None else None)
    hedge = (HedgePolicy(delay=args.hedge_ms / 1000.0)
             if args.hedge_ms is not None else None)
    resilience = ResilienceConfig(
        breaker_failure_threshold=args.breaker_threshold,
        breaker_reset_timeout=args.breaker_reset_ms / 1000.0,
        hedge=hedge,
        retry_max_tokens=args.retry_budget,
        probe_interval=(args.probe_ms / 1000.0 if args.probe_ms > 0
                        else None))
    with ClusterLauncher(args.deployment, replication=args.replicas,
                         num_workers=args.shard_workers) as launcher:
        addresses = launcher.start()
        for shard_id, replica_addresses in sorted(addresses.items()):
            listed = ", ".join(f"{host}:{port}"
                               for host, port in replica_addresses)
            print(f"shard {shard_id}: {listed}")
        with connect_router(args.deployment, addresses,
                            max_fanout=args.fanout,
                            resilience=resilience) as router, \
                ClusterFrontend(router, host=args.host, port=args.port,
                                max_inflight=args.max_inflight,
                                num_workers=args.workers,
                                default_timeout=timeout).start() as front:
            host, port = front.address
            print(f"FRONTEND READY {host} {port}", flush=True)
            try:
                while True:
                    time.sleep(3600.0)
            except KeyboardInterrupt:
                print("shutting down")
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    import os

    from .core import scrub_saved
    from .durability import is_durable_dir, scrub_durable

    if not os.path.isdir(args.directory):
        print(f"error: {args.directory} is not a directory",
              file=sys.stderr)
        return 2
    if is_durable_dir(args.directory):
        report = scrub_durable(args.directory)
        print(report.summary())
        return 0 if report.clean else 1
    report = scrub_saved(args.directory)
    print(report.summary())
    if not report.clean:
        for path, reason in report.corrupt:
            print(f"  corrupt: {path}: {reason}", file=sys.stderr)
    return 0 if report.clean else 1


def _cmd_chaos_bench(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from .durability import (
        build_script,
        measure_wal_overhead,
        run_corruption_trials,
        run_crash_trials,
    )

    collection = generate(SyntheticConfig(
        name="chaos", num_pois=args.pois, num_unique_terms=200,
        avg_terms_per_poi=3.0, seed=args.seed))
    script = build_script(collection, args.ops, seed=args.seed)
    with tempfile.TemporaryDirectory() as workdir:
        started = time.perf_counter()
        crash = run_crash_trials(collection, script, args.crash_trials,
                                 seed=args.seed, workdir=workdir,
                                 sync=args.sync)
        print(f"crash trials: {crash.summary()} "
              f"({time.perf_counter() - started:.1f} s)")
        for failure in crash.failures():
            print(f"  FAILED trial {failure.trial}: "
                  f"{'; '.join(failure.mismatches)}", file=sys.stderr)
        started = time.perf_counter()
        corruption = run_corruption_trials(
            collection, args.corruption_trials, seed=args.seed,
            workdir=workdir)
        print(f"corruption trials: {corruption.summary()} "
              f"({time.perf_counter() - started:.1f} s)")
        overhead = measure_wal_overhead(collection, script, workdir,
                                        sync=args.sync)
    print(f"WAL overhead ({args.sync}): "
          f"{100.0 * overhead['overhead_fraction']:.1f}% "
          f"({overhead['plain_ops_per_sec']:.0f} -> "
          f"{overhead['durable_ops_per_sec']:.0f} ops/s)")
    ok = crash.all_identical and corruption.all_surfaced
    if args.json:
        payload = {
            "config": {
                "pois": args.pois, "ops": args.ops, "seed": args.seed,
                "sync": args.sync,
                "crash_trials": args.crash_trials,
                "corruption_trials": args.corruption_trials,
            },
            "crash": {
                "trials": crash.total,
                "identical": crash.identical,
                "failures": [f.mismatches for f in crash.failures()],
            },
            "corruption": {
                "trials": corruption.total,
                "undetected": corruption.undetected,
                "silent_wrong": corruption.silent_wrong,
            },
            "wal_overhead": overhead,
            "ok": ok,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote chaos report to {args.json}")
    return 0 if ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis import (ALIAS_CODES, RULE_INDEX, Contract, LintEngine,
                           ProgramRule, build_graph)

    contract = Contract.load(args.contract) if args.contract else None
    selected = None
    if args.rules:
        codes = [c.strip().upper() for c in args.rules.split(",") if c.strip()]
        unknown = [c for c in codes if c not in RULE_INDEX]
        if unknown:
            known = ", ".join(sorted(RULE_INDEX))
            raise ValueError(
                f"unknown rule code(s) {', '.join(unknown)}; known: {known}")
        selected = set(codes)
        if "DAL010" in selected:
            # The generic contract rule reports the historic external/
            # layering/restricted violations under their legacy codes.
            selected.update(ALIAS_CODES)
        file_rules, program_rules = [], []
        for code in codes:
            rule_cls = RULE_INDEX[code]
            bucket = (program_rules if issubclass(rule_cls, ProgramRule)
                      else file_rules)
            if rule_cls not in bucket:
                bucket.append(rule_cls)
        engine = LintEngine(file_rules, program_rules=program_rules,
                            contract=contract)
    else:
        engine = LintEngine(contract=contract)
    report = engine.check(args.targets)
    if selected is not None:
        report.findings = [f for f in report.findings
                           if f.code in selected]
        report.suppressed = [f for f in report.suppressed
                             if f.code in selected]
    if args.graph:
        json_path, dot_path = build_graph(args.targets).write(args.graph)
        print(f"wrote import graph to {json_path} and {dot_path}")
    if args.json == "-":
        print(report.to_json())
    else:
        print(report.render())
        if args.show_suppressed and report.suppressed:
            print("suppressed:")
            for finding in report.suppressed:
                print("  " + finding.render())
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(report.to_json())
                handle.write("\n")
            print(f"wrote lint report to {args.json}")
    return 0 if report.clean else 1


_COMMANDS = {
    "generate": _cmd_generate,
    "stats": _cmd_stats,
    "build": _cmd_build,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "trace": _cmd_trace,
    "bench": _cmd_bench,
    "serve-bench": _cmd_serve_bench,
    "cluster-bench": _cmd_cluster_bench,
    "shard-server": _cmd_shard_server,
    "serve": _cmd_serve,
    "scrub": _cmd_scrub,
    "chaos-bench": _cmd_chaos_bench,
    "lint": _cmd_lint,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    sys.exit(main())
