"""A crash-safe mutable DESKS index: WAL in front, snapshots behind.

:class:`DurableMutableIndex` wraps the main-plus-delta design of
:class:`~repro.core.MutableDesksIndex` with write-ahead logging so the
visible state survives a process crash at *any* instant:

* every ``insert``/``delete`` is appended (CRC'd, sequence-numbered) to a
  :class:`~repro.storage.WriteAheadLog` **before** it mutates memory;
* ``checkpoint()`` compacts the delta into the static index, saves an
  atomic snapshot (:func:`~repro.core.save_index` with the op sequence
  number riding inside the same atomic swap), then truncates the WAL;
* ``recover()`` loads the last durable snapshot and replays the WAL
  suffix — ops whose sequence number the snapshot already absorbed are
  skipped, which makes a crash *between* snapshot swap and WAL truncation
  harmless (the classic double-apply window).

Replay is deterministic: given the same base collection, the same op
sequence, and the same rebuild threshold, ``MutableDesksIndex`` assigns
the same ids and rebuilds at the same points, so a recovered index answers
queries byte-for-byte like an instance that never crashed (the chaos
harness in :mod:`repro.durability.chaos` asserts exactly this).

Directory layout::

    <dir>/durable.json    build parameters (bands, wedges, threshold)
    <dir>/snapshot/       save_index format + op_seq marker
    <dir>/wal/            segment-%08d.wal
"""

from __future__ import annotations

import json
import os
from contextlib import nullcontext
from typing import Iterable, Optional

from ..trace.spans import current_tracer
from ..core.dynamic import MutableDesksIndex
from ..core.index import DesksIndex
from ..core.persistence import (
    PersistenceError,
    _fsync_dir,
    load_index,
    save_index,
    scrub_saved,
    SavedScrubReport,
)
from ..datasets import POICollection
from ..storage.serializer import (
    decode_floats,
    decode_keywords,
    decode_varint,
    encode_floats,
    encode_keywords,
    encode_varint,
)
from ..storage.stats import IOStats
from ..storage.wal import (
    RECORD_OP,
    FailpointFn,
    WalScrubReport,
    WriteAheadLog,
    wal_scrub,
)

DURABLE_VERSION = 1
DURABLE_META = "durable.json"
SNAPSHOT_DIR = "snapshot"
WAL_DIR = "wal"
#: Name of the op-sequence marker stored *inside* the snapshot directory,
#: so snapshot contents and marker swap into place in one rename.
SNAPSHOT_MARKER = "durable.json"


def _maybe_span(name: str):
    """A tracer span when tracing is active, else a no-op context."""
    tracer = current_tracer()
    return tracer.span(name) if tracer is not None else nullcontext()


_OP_INSERT = 1
_OP_DELETE = 2


class DurableMutableIndex(MutableDesksIndex):
    """A mutable DESKS index whose mutations survive crashes.

    Build with :meth:`create` (fresh directory) or :meth:`recover`
    (after a crash or clean shutdown); the plain constructor is not
    supported because durable state needs a directory protocol.
    """

    def __init__(self, *args, **kwargs) -> None:
        raise TypeError(
            "use DurableMutableIndex.create(...) or .recover(...)")

    # -- construction --------------------------------------------------------

    @classmethod
    def create(cls, collection: POICollection, directory: str,
               num_bands: Optional[int] = None,
               num_wedges: Optional[int] = None,
               rebuild_threshold: float = 0.25,
               sync: str = "batch",
               sync_interval: int = 32,
               failpoint: Optional[FailpointFn] = None
               ) -> "DurableMutableIndex":
        """Build a durable index over ``collection`` rooted at ``directory``.

        The base collection is snapshotted immediately (op_seq 0), so even
        a crash before the first mutation leaves a recoverable directory.
        ``durable.json`` is written (and fsynced) *last*: it is the commit
        record of creation, so a crash anywhere earlier leaves a directory
        that a re-run of ``create()`` simply restarts — never one that
        both ``create()`` and ``recover()`` refuse.
        """
        if os.path.exists(os.path.join(directory, DURABLE_META)):
            raise PersistenceError(
                f"{directory} already holds a durable index; use recover()")
        os.makedirs(directory, exist_ok=True)
        index = DesksIndex(collection, num_bands, num_wedges)
        instance = cls._adopt(index, rebuild_threshold)
        instance._attach(directory, sync, sync_interval, failpoint)
        instance._save_snapshot()
        meta = {
            "version": DURABLE_VERSION,
            "num_bands": index.num_bands,
            "num_wedges": index.num_wedges,
            "rebuild_threshold": rebuild_threshold,
        }
        meta_path = os.path.join(directory, DURABLE_META)
        tmp_path = meta_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(meta, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, meta_path)
        _fsync_dir(directory)
        instance._wal = instance._open_wal()
        return instance

    @classmethod
    def recover(cls, directory: str, *,
                sync: str = "batch",
                sync_interval: int = 32,
                verify: bool = False,
                failpoint: Optional[FailpointFn] = None
                ) -> "DurableMutableIndex":
        """Reopen ``directory`` after a crash (or clean close).

        Loads the last durable snapshot, then replays the WAL suffix:
        records whose sequence number is <= the snapshot's marker were
        already absorbed and are skipped; a torn tail ends replay cleanly.
        With ``verify=True`` the snapshot's checksum manifest is enforced
        before any byte of it is trusted.
        """
        meta = _load_durable_meta(directory)
        snapshot_dir = os.path.join(directory, SNAPSHOT_DIR)
        static = load_index(snapshot_dir, verify=verify)
        marker = _load_marker(snapshot_dir)
        instance = cls._adopt(static, meta["rebuild_threshold"])
        instance._attach(directory, sync, sync_interval, failpoint)
        instance._op_seq = marker["op_seq"]
        instance._snapshot_op_seq = marker["op_seq"]
        replay_log = WriteAheadLog(instance._wal_dir, sync=sync,
                                   sync_interval=sync_interval,
                                   stats=instance.wal_stats)
        try:
            for rectype, payload in replay_log.replay():
                if rectype != RECORD_OP:
                    continue
                instance._apply_record(payload)
        finally:
            replay_log.close()
        instance._wal = instance._open_wal()
        return instance

    @classmethod
    def _adopt(cls, index: DesksIndex,
               rebuild_threshold: float) -> "DurableMutableIndex":
        instance = super().from_static(index, rebuild_threshold)
        instance._op_seq = 0
        instance._snapshot_op_seq = 0
        instance._wal = None
        instance._replaying = False
        instance._checkpointing = False
        instance._poisoned = False
        return instance

    def _attach(self, directory: str, sync: str, sync_interval: int,
                failpoint: Optional[FailpointFn]) -> None:
        self.directory = directory
        self._sync = sync
        self._sync_interval = sync_interval
        self._failpoint = failpoint
        self._wal_dir = os.path.join(directory, WAL_DIR)
        self.wal_stats = IOStats()

    def _open_wal(self) -> WriteAheadLog:
        return WriteAheadLog(self._wal_dir, sync=self._sync,
                             sync_interval=self._sync_interval,
                             stats=self.wal_stats,
                             failpoint=self._failpoint)

    # -- durable state -------------------------------------------------------

    @property
    def op_seq(self) -> int:
        """Sequence number of the last applied mutation (0 = none)."""
        return self._op_seq

    @property
    def snapshot_op_seq(self) -> int:
        """Op sequence the last durable snapshot absorbed.

        The WAL suffix ``(snapshot_op_seq, op_seq]`` is what recovery
        would replay if the process died right now."""
        return self._snapshot_op_seq

    @property
    def wal(self) -> WriteAheadLog:
        """The underlying write-ahead log."""
        return self._wal

    # -- logged mutations ----------------------------------------------------

    def insert(self, x: float, y: float, keywords: Iterable[str]) -> int:
        """Insert a POI, WAL-first; returns its id."""
        with _maybe_span("durable.insert"), self._lock:
            self._check_usable()
            # Materialize once: ``keywords`` may be a one-shot iterable,
            # and the WAL payload and the live index must see the same
            # terms or recovery would diverge from the pre-crash state.
            kws = sorted(set(keywords))
            if not self._replaying:
                payload = (encode_varint(self._op_seq + 1)
                           + bytes([_OP_INSERT])
                           + encode_floats([x, y])
                           + encode_keywords(kws))
                self._wal.append(payload)
            self._op_seq += 1
            return super().insert(x, y, kws)

    def delete(self, poi_id: int) -> bool:
        """Delete a POI, WAL-first; True if it existed."""
        with _maybe_span("durable.delete"), self._lock:
            self._check_usable()
            if not self._replaying:
                payload = (encode_varint(self._op_seq + 1)
                           + bytes([_OP_DELETE])
                           + encode_varint(poi_id))
                self._wal.append(payload)
            self._op_seq += 1
            return super().delete(poi_id)

    def _apply_record(self, payload: bytes) -> None:
        seq, offset = decode_varint(payload)
        if seq <= self._snapshot_op_seq:
            return  # Absorbed by the snapshot already (double-apply guard).
        if seq != self._op_seq + 1:
            raise PersistenceError(
                f"WAL sequence gap: expected {self._op_seq + 1}, got {seq}")
        op = payload[offset]
        offset += 1
        self._replaying = True
        try:
            if op == _OP_INSERT:
                coords, offset = decode_floats(payload, offset)
                keywords, _ = decode_keywords(payload, offset)
                self.insert(coords[0], coords[1], keywords)
            elif op == _OP_DELETE:
                poi_id, _ = decode_varint(payload, offset)
                self.delete(poi_id)
            else:
                raise PersistenceError(f"unknown WAL op byte {op}")
        finally:
            self._replaying = False

    # -- checkpointing -------------------------------------------------------

    def checkpoint(self) -> None:
        """Make all applied mutations durable and truncate the WAL.

        Three ordered steps — compact the delta, atomically swap in a
        snapshot carrying ``op_seq``, drop the WAL.  A crash between any
        two leaves a recoverable directory: before the swap, the old
        snapshot plus the full WAL reproduce everything; after the swap
        but before truncation, replay skips the absorbed prefix via the
        marker.
        """
        with _maybe_span("durable.checkpoint"), self._lock:
            self._check_usable()
            # Compaction re-densifies ids without a WAL record of it; if
            # the snapshot that would make it durable then fails (short of
            # a full crash), later WAL records would reference ids replay
            # cannot reconstruct.  Poison the instance for that window —
            # a real crash is fine (recovery ignores in-memory state), a
            # swallowed exception is not.
            self._poisoned = True
            self._checkpointing = True
            try:
                with _maybe_span("durable.compact"):
                    self.compact()
                with _maybe_span("durable.snapshot"):
                    self._save_snapshot()
                with _maybe_span("wal.truncate"):
                    self._wal.checkpoint()
            finally:
                self._checkpointing = False
            self._poisoned = False

    def compact(self) -> bool:
        """Bare compaction is not durable (ids move with no WAL trace);
        on a durable index it only runs as part of :meth:`checkpoint`."""
        if not self._checkpointing:
            raise PersistenceError(
                "DurableMutableIndex.compact() runs only inside "
                "checkpoint(); call checkpoint() instead")
        return super().compact()

    def _check_usable(self) -> None:
        if self._poisoned:
            raise PersistenceError(
                "durable index poisoned by a failed checkpoint; "
                "recover() from disk to continue")

    def _save_snapshot(self) -> None:
        marker = json.dumps({"version": DURABLE_VERSION,
                             "op_seq": self._op_seq}).encode("ascii")
        # The failpoint rides into the directory swap itself, so chaos
        # trials crash between its two renames — the window
        # repair_interrupted_swap() exists for.
        save_index(self._index, os.path.join(self.directory, SNAPSHOT_DIR),
                   extra_files={SNAPSHOT_MARKER: marker},
                   failpoint=self._failpoint)
        self._snapshot_op_seq = self._op_seq

    # -- verification --------------------------------------------------------

    def scrub(self) -> "DurabilityScrubReport":
        """Verify every durable byte: snapshot files and WAL segments."""
        snapshot = scrub_saved(os.path.join(self.directory, SNAPSHOT_DIR))
        wal = self._wal.scrub()
        return DurabilityScrubReport(snapshot, wal)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Clean shutdown: sync the WAL so nothing is lost, keep segments
        (recover() replays them; checkpoint() first for a fast reopen)."""
        self._wal.close()

    def abandon(self) -> None:
        """Release file handles *without* syncing — what a crash leaves.

        Meaningful under a failpoint (chaos trials), where the WAL file is
        unbuffered and closing loses nothing that was already written; it
        simply frees descriptors so trials can reopen the directory
        without leaking."""
        if self._wal is not None and not self._wal._file.closed:
            self._wal._file.close()

    def __enter__(self) -> "DurableMutableIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class DurabilityScrubReport:
    """Combined verification of a durable index's snapshot and WAL."""

    def __init__(self, snapshot: SavedScrubReport,
                 wal: WalScrubReport) -> None:
        self.snapshot = snapshot
        self.wal = wal

    @property
    def clean(self) -> bool:
        """True when neither the snapshot nor the WAL has damage."""
        return self.snapshot.clean and self.wal.clean

    def summary(self) -> str:
        """One line combining the snapshot and WAL verdicts."""
        return f"{self.snapshot.summary()}; {self.wal.summary()}"


def scrub_durable(directory: str) -> DurabilityScrubReport:
    """Offline verification of a durable index directory (no replay).

    Strictly read-only: the WAL is scanned via :func:`wal_scrub` rather
    than opened through :class:`WriteAheadLog` (whose constructor would
    truncate a torn tail and open a segment for append), so a torn final
    record is *reported*, not silently repaired.  ``recover()`` is what
    repairs it.
    """
    _load_durable_meta(directory)
    snapshot = scrub_saved(os.path.join(directory, SNAPSHOT_DIR))
    return DurabilityScrubReport(snapshot,
                                 wal_scrub(os.path.join(directory, WAL_DIR)))


def is_durable_dir(directory: str) -> bool:
    """Does ``directory`` look like a DurableMutableIndex root?

    ``durable.json`` alone decides: it is the commit record of
    :meth:`DurableMutableIndex.create` (written last), and the snapshot
    directory may legitimately be mid-swap after a crash — ``recover()``
    repairs that on open.
    """
    return os.path.isfile(os.path.join(directory, DURABLE_META))


def _load_durable_meta(directory: str) -> dict:
    path = os.path.join(directory, DURABLE_META)
    if not os.path.isfile(path):
        raise PersistenceError(
            f"{directory} is not a durable index (no {DURABLE_META})")
    with open(path, "r", encoding="utf-8") as handle:
        meta = json.load(handle)
    if meta.get("version") != DURABLE_VERSION:
        raise PersistenceError(
            f"durable format version {meta.get('version')!r} unsupported "
            f"(expected {DURABLE_VERSION})")
    return meta


def _load_marker(snapshot_dir: str) -> dict:
    path = os.path.join(snapshot_dir, SNAPSHOT_MARKER)
    if not os.path.isfile(path):
        raise PersistenceError(
            f"snapshot {snapshot_dir} lacks its op-sequence marker")
    with open(path, "r", encoding="utf-8") as handle:
        marker = json.load(handle)
    if not isinstance(marker.get("op_seq"), int) or marker["op_seq"] < 0:
        raise PersistenceError(
            f"snapshot marker op_seq invalid: {marker.get('op_seq')!r}")
    return marker
