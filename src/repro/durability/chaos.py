"""Chaos harness: randomized crash and corruption trials.

The durability layer's promise is behavioural, not structural: after a
crash at *any* instant, recovery must produce an index that answers
queries **byte-for-byte identically** to an instance that applied the same
durable prefix of operations and never crashed.  This module turns that
promise into repeatable experiments:

* :func:`build_script` records a concrete operation script (inserts with
  keywords including non-ASCII terms, deletes of then-live ids, checkpoint
  markers) so the same workload can be applied, crashed, and replayed on a
  twin deterministically;
* :func:`run_crash_trials` runs the script against a
  :class:`~repro.durability.DurableMutableIndex` with a countdown
  failpoint that raises :class:`~repro.storage.SimulatedCrash` at a
  seed-chosen WAL stage, recovers, and compares the recovered index
  against a freshly built twin on probe queries and the full live-POI set;
* :func:`run_corruption_trials` flips/tears/truncates pages of a
  checksummed disk index and asserts every damaged read is *surfaced*
  (degraded response / scrub hit), never silently wrong;
* :func:`measure_wal_overhead` times the same mutation workload with and
  without the WAL in front, for the benchmark report.

Everything is deterministic under a seed; the tier-1 suite runs a small
number of trials and the chaos benchmark runs hundreds.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..core import MutableDesksIndex
from ..core.query import DirectionalQuery
from ..datasets import POICollection
from ..storage import SimulatedCrash
from .durable import DurableMutableIndex, is_durable_dir

#: Deliberately multilingual so crash/recovery exercises the UTF-8 paths
#: of the WAL op codec and the snapshot CSV round-trip.
CHAOS_TERMS = (
    "cafe", "café", "crêperie", "über", "łódź", "北京烤鸭", "書店",
    "مقهى", "пекарня", "θέατρο", "restaurant", "fuel", "museum",
)

OP_INSERT = "insert"
OP_DELETE = "delete"
OP_CHECKPOINT = "checkpoint"


class CountdownFailpoint:
    """Raises :class:`SimulatedCrash` on the n-th failpoint firing.

    With ``countdown=None`` it never crashes and just counts — one
    uncrashed reference run measures how many firings a full workload
    produces, which bounds the crash points later trials draw from.
    """

    def __init__(self, countdown: Optional[int] = None) -> None:
        self.countdown = countdown
        self.fired = 0
        self.crashed_at: Optional[str] = None

    def __call__(self, stage: str) -> None:
        self.fired += 1
        if self.countdown is not None and self.fired >= self.countdown:
            self.crashed_at = stage
            raise SimulatedCrash(f"failpoint {stage} (firing {self.fired})")


# -- workload scripts --------------------------------------------------------


def build_script(base: POICollection, num_ops: int, seed: int,
                 checkpoint_prob: float = 0.04,
                 delete_prob: float = 0.35,
                 rebuild_threshold: float = 0.25) -> List[Tuple]:
    """Record a concrete op script against a simulation of the index.

    Deletes must name ids that are live *at that point of the workload*
    (rebuilds re-densify ids), so the script is produced by actually
    running the ops on a plain :class:`MutableDesksIndex` and recording
    the concrete arguments used.
    """
    rng = random.Random(seed)
    sim = MutableDesksIndex(base, rebuild_threshold=rebuild_threshold)
    mbr = base.mbr
    script: List[Tuple] = []
    applied = 0
    while applied < num_ops:
        roll = rng.random()
        if roll < checkpoint_prob and applied > 0:
            script.append((OP_CHECKPOINT,))
            sim.compact()
            continue
        if roll < checkpoint_prob + delete_prob and len(sim) > 1:
            victim = rng.choice(sim.live_pois()).poi_id
            script.append((OP_DELETE, victim))
            sim.delete(victim)
        else:
            x = rng.uniform(mbr.min_x, mbr.max_x)
            y = rng.uniform(mbr.min_y, mbr.max_y)
            terms = tuple(sorted(rng.sample(CHAOS_TERMS,
                                            rng.randint(1, 4))))
            script.append((OP_INSERT, x, y, terms))
            sim.insert(x, y, terms)
        applied += 1
    return script


def apply_script(index, script: Sequence[Tuple],
                 durable_checkpoints: bool) -> None:
    """Apply a script; checkpoint markers call ``checkpoint()`` on durable
    indexes and ``compact()`` on plain ones (same id evolution)."""
    for entry in script:
        if entry[0] == OP_CHECKPOINT:
            if durable_checkpoints:
                index.checkpoint()
            else:
                index.compact()
        elif entry[0] == OP_INSERT:
            index.insert(entry[1], entry[2], entry[3])
        else:
            index.delete(entry[1])


def build_twin(base: POICollection, script: Sequence[Tuple],
               target_ops: int, snapshot_ops: int,
               rebuild_threshold: float = 0.25) -> MutableDesksIndex:
    """The never-crashed reference for one trial: the durable prefix.

    Applies the first ``target_ops`` mutations; a checkpoint marker
    compacts only when its position is covered by the recovered snapshot
    (``<= snapshot_ops``) — a checkpoint whose snapshot swap the crash
    pre-empted never durably re-densified ids, so the twin must not
    either.
    """
    twin = MutableDesksIndex(base, rebuild_threshold=rebuild_threshold)
    position = 0
    for entry in script:
        if entry[0] == OP_CHECKPOINT:
            if position <= snapshot_ops:
                twin.compact()
            continue
        if position >= target_ops:
            break
        if entry[0] == OP_INSERT:
            twin.insert(entry[1], entry[2], entry[3])
        else:
            twin.delete(entry[1])
        position += 1
    return twin


# -- probes ------------------------------------------------------------------


def probe_queries(base: POICollection, count: int, seed: int,
                  k: int = 8) -> List[DirectionalQuery]:
    """Deterministic probe set mixing directions, keyword counts, modes."""
    rng = random.Random(seed)
    mbr = base.mbr
    queries = []
    for _ in range(count):
        x = rng.uniform(mbr.min_x, mbr.max_x)
        y = rng.uniform(mbr.min_y, mbr.max_y)
        alpha = rng.uniform(0.0, 5.0)
        beta = alpha + rng.uniform(0.3, 4.0)
        terms = rng.sample(CHAOS_TERMS, rng.randint(1, 2))
        queries.append(DirectionalQuery.make(x, y, alpha, beta, terms, k))
    return queries


def answer_fingerprint(index, queries: Sequence[DirectionalQuery]
                       ) -> List[Tuple]:
    """Exact per-query answers: ``[(poi_id, distance), ...]`` per probe.

    Tuple equality over these is the byte-for-byte criterion — ids are
    ints and distances come out of the identical float computation on
    both sides, so any divergence in state shows up here.
    """
    fingerprint = []
    for query in queries:
        result = index.search(query)
        fingerprint.append(tuple((e.poi_id, e.distance)
                                 for e in result.entries))
    return fingerprint


def live_fingerprint(index) -> List[Tuple]:
    """Full visible state, id-free: sorted ``(x, y, keywords)`` rows."""
    return sorted((p.location.x, p.location.y, tuple(sorted(p.keywords)))
                  for p in index.live_pois())


# -- crash trials ------------------------------------------------------------


@dataclass
class CrashTrialResult:
    """Outcome of one kill-and-recover experiment."""

    trial: int
    crash_countdown: int
    crashed_at: Optional[str]        # None: workload completed uncrashed
    recovered_ops: int
    snapshot_ops: int
    identical: bool
    mismatches: List[str] = field(default_factory=list)


@dataclass
class ChaosReport:
    """Aggregate over a batch of crash trials."""

    trials: List[CrashTrialResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of crash trials run."""
        return len(self.trials)

    @property
    def identical(self) -> int:
        """Trials whose recovery matched the never-crashed twin."""
        return sum(1 for t in self.trials if t.identical)

    @property
    def all_identical(self) -> bool:
        """True when every trial recovered byte-identically."""
        return self.identical == self.total

    def failures(self) -> List[CrashTrialResult]:
        """The trials that diverged after recovery."""
        return [t for t in self.trials if not t.identical]

    def summary(self) -> str:
        """One line for the chaos-bench report."""
        return (f"{self.identical}/{self.total} trials recovered "
                f"byte-identically")


def run_crash_trials(base: POICollection, script: Sequence[Tuple],
                     num_trials: int, seed: int, workdir: str,
                     probes: int = 6,
                     sync: str = "batch",
                     rebuild_threshold: float = 0.25) -> ChaosReport:
    """Kill the workload at ``num_trials`` seed-chosen WAL stages; assert
    each recovery answers identically to its never-crashed twin."""
    import os
    import shutil

    queries = probe_queries(base, probes, seed ^ 0x9E3779B9)
    # Reference run: counts failpoint firings so trials can target any
    # stage of the whole workload, including checkpoint internals.
    counter = CountdownFailpoint(None)
    ref_dir = os.path.join(workdir, "reference")
    reference = DurableMutableIndex.create(
        base, ref_dir, rebuild_threshold=rebuild_threshold, sync=sync,
        failpoint=counter)
    apply_script(reference, script, durable_checkpoints=True)
    reference.close()
    total_firings = max(counter.fired, 1)

    rng = random.Random(seed)
    report = ChaosReport()
    for trial in range(num_trials):
        countdown = rng.randint(1, total_firings)
        trial_dir = os.path.join(workdir, f"trial{trial}")
        failpoint = CountdownFailpoint(countdown)
        index = None
        try:
            index = DurableMutableIndex.create(
                base, trial_dir, rebuild_threshold=rebuild_threshold,
                sync=sync, failpoint=failpoint)
            apply_script(index, script, durable_checkpoints=True)
        except SimulatedCrash:
            pass
        finally:
            if index is not None:
                index.abandon()

        if is_durable_dir(trial_dir):
            recovered = DurableMutableIndex.recover(trial_dir, sync=sync)
        else:
            # The crash pre-empted create() itself (durable.json — the
            # commit record of creation — lands last); the documented
            # remedy is to simply re-run create().
            recovered = DurableMutableIndex.create(
                base, trial_dir, rebuild_threshold=rebuild_threshold,
                sync=sync)
        twin = build_twin(base, script, recovered.op_seq,
                          recovered.snapshot_op_seq, rebuild_threshold)
        mismatches = []
        if live_fingerprint(recovered) != live_fingerprint(twin):
            mismatches.append("live POI set diverged")
        if (answer_fingerprint(recovered, queries)
                != answer_fingerprint(twin, queries)):
            mismatches.append("probe answers diverged")
        scrub = recovered.scrub()
        if not scrub.clean:
            mismatches.append(f"post-recovery scrub dirty: "
                              f"{scrub.summary()}")
        report.trials.append(CrashTrialResult(
            trial=trial, crash_countdown=countdown,
            crashed_at=failpoint.crashed_at,
            recovered_ops=recovered.op_seq,
            snapshot_ops=recovered.snapshot_op_seq,
            identical=not mismatches, mismatches=mismatches))
        recovered.close()
        shutil.rmtree(trial_dir, ignore_errors=True)
    return report


# -- corruption trials -------------------------------------------------------


@dataclass
class CorruptionTrialResult:
    """Outcome of one inject-and-query experiment."""

    trial: int
    kind: str
    page_id: int
    changed: bool                     # injection actually altered bytes
    scrub_detected: bool
    degraded_responses: int
    silent_wrong: int                 # MUST stay 0


@dataclass
class CorruptionReport:
    """Aggregate over a batch of corruption-injection trials."""

    trials: List[CorruptionTrialResult] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Number of injection trials run."""
        return len(self.trials)

    @property
    def silent_wrong(self) -> int:
        """Wrong answers served without any detection — must stay 0."""
        return sum(t.silent_wrong for t in self.trials)

    @property
    def undetected(self) -> int:
        """Injections that changed bytes but escaped the scrub."""
        return sum(1 for t in self.trials
                   if t.changed and not t.scrub_detected)

    @property
    def all_surfaced(self) -> bool:
        """True when every injection was detected or harmless."""
        return self.silent_wrong == 0 and self.undetected == 0

    def summary(self) -> str:
        """One line for the chaos-bench report."""
        return (f"{self.total} injection(s): {self.undetected} undetected, "
                f"{self.silent_wrong} silently wrong answer(s)")


def run_corruption_trials(collection: POICollection, num_trials: int,
                          seed: int, workdir: str,
                          probes: int = 4,
                          page_size: int = 512) -> CorruptionReport:
    """Inject page corruption into a checksummed disk index; every probe
    must come back either correct or explicitly degraded."""
    import os

    from ..core import DesksIndex
    from ..service import QueryEngine
    from ..storage import CorruptionInjector

    index = DesksIndex(collection, disk_based=True,
                       disk_path_prefix=os.path.join(workdir, "pages"),
                       page_size=page_size, checksums=True)
    for anchor in index.anchors:
        if anchor is not None:
            anchor.store.flush()  # injections must not be flushed over
    queries = probe_queries(collection, probes, seed ^ 0x517CC1B7)
    engine = QueryEngine(index, num_workers=1)
    clean = [engine.execute(q).result for q in queries]

    injector = CorruptionInjector(seed)
    rng = random.Random(seed ^ 0x2545F491)
    report = CorruptionReport()
    stores = index.page_stores()
    for trial in range(num_trials):
        store = stores[rng.randrange(len(stores))]
        page_id = rng.randrange(store.num_pages)
        # Corruption is injected at the *physical* layer on purpose: going
        # through the pool would damage a cached frame, not the bytes the
        # recovery path re-reads.
        saved = store.inner.read_page(page_id)  # desks: noqa-DAL005
        event = injector.corrupt_page(store, page_id=page_id)
        changed = store.verify_page(page_id) is not None
        # Damaged pages must actually be *read*: evict the buffer pools
        # and the result cache so every probe goes back to the frames.
        index.drop_caches()
        engine.cache.clear()
        scrub_hit = not index.scrub().clean
        degraded = 0
        silent_wrong = 0
        for query, reference in zip(queries, clean):
            response = engine.execute(query)
            if response.degraded:
                degraded += 1
            elif response.result.entries != reference.entries:
                silent_wrong += 1
        report.trials.append(CorruptionTrialResult(
            trial=trial, kind=event.kind, page_id=page_id,
            changed=changed, scrub_detected=scrub_hit,
            degraded_responses=degraded, silent_wrong=silent_wrong))
        # The saved physical bytes verified before the injection, so
        # writing them back restores the exact pre-injection frame.
        store.inner.write_page(page_id, saved)  # desks: noqa-DAL005
        index.drop_caches()
        engine.cache.clear()
    engine.close()
    index.close()
    return report


# -- overhead ----------------------------------------------------------------


def measure_wal_overhead(base: POICollection, script: Sequence[Tuple],
                         workdir: str, sync: str = "batch",
                         sync_interval: int = 32,
                         rebuild_threshold: float = 0.25,
                         repeats: int = 3) -> dict:
    """Time the same mutation stream with and without the WAL in front.

    ``overhead_fraction`` isolates the *logging* cost — the per-mutation
    price every insert/delete pays forever: both variants run the script's
    insert/delete stream (checkpoint markers compact on both sides, under
    identical code, so rebuild work cancels out).  Checkpointing cost —
    snapshot + WAL truncation, paid occasionally and amortized by policy —
    is measured separately and reported as ``checkpoint_seconds_avg``.
    Each variant takes the best of ``repeats`` runs (coarse clock noise).
    """
    import os
    import shutil

    mutations = sum(1 for entry in script if entry[0] != OP_CHECKPOINT)
    stream = [entry for entry in script if entry[0] != OP_CHECKPOINT]

    def run_plain() -> float:
        index = MutableDesksIndex(base,
                                  rebuild_threshold=rebuild_threshold)
        started = time.perf_counter()
        apply_script(index, stream, durable_checkpoints=False)
        return time.perf_counter() - started

    def run_durable(run: int) -> Tuple[float, float, int]:
        directory = os.path.join(workdir, f"overhead{run}")
        index = DurableMutableIndex.create(
            base, directory, rebuild_threshold=rebuild_threshold,
            sync=sync, sync_interval=sync_interval)
        started = time.perf_counter()
        apply_script(index, stream, durable_checkpoints=True)
        elapsed = time.perf_counter() - started
        checkpoint_started = time.perf_counter()
        index.checkpoint()
        checkpoint_s = time.perf_counter() - checkpoint_started
        index.close()
        shutil.rmtree(directory, ignore_errors=True)
        return elapsed, checkpoint_s, 1

    run_plain()          # warm caches/allocator so neither side pays for it
    run_durable(-1)
    plain_times: List[float] = []
    durable_runs: List[Tuple[float, float, int]] = []
    for run in range(repeats):
        # Interleave the variants so clock drift and filesystem state
        # changes during the measurement hit both sides equally.
        plain_times.append(run_plain())
        durable_runs.append(run_durable(run))
    plain_s = min(plain_times)
    durable_s = min(elapsed for elapsed, _, _ in durable_runs)
    checkpoint_avg = (sum(c for _, c, _ in durable_runs)
                      / len(durable_runs))
    overhead = (durable_s - plain_s) / plain_s if plain_s > 0 else 0.0
    return {
        "mutations": mutations,
        "sync": sync,
        "sync_interval": sync_interval,
        "plain_seconds": plain_s,
        "durable_seconds": durable_s,
        "plain_ops_per_sec": mutations / plain_s if plain_s else 0.0,
        "durable_ops_per_sec": (mutations / durable_s
                                if durable_s else 0.0),
        "overhead_fraction": overhead,
        "checkpoint_seconds_avg": checkpoint_avg,
    }
