"""Term dictionary mapping keywords to dense integer ids.

Every index in the library stores term *ids*, not strings: ids make inverted
lists delta-compressible, signatures hashable, and comparisons cheap.  The
vocabulary also tracks document frequency, which the workload generators use
to pick realistic (frequency-skewed) query keywords.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional


class Vocabulary:
    """Bidirectional term <-> id map with document frequencies."""

    def __init__(self) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        self._doc_freq: List[int] = []

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def add(self, term: str) -> int:
        """Intern ``term``; returns its id (existing or new).

        Does *not* bump document frequency — use :meth:`add_document` when
        indexing a POI so each POI counts once per term.
        """
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._id_to_term)
            self._term_to_id[term] = term_id
            self._id_to_term.append(term)
            self._doc_freq.append(0)
        return term_id

    def add_document(self, terms: Iterable[str]) -> FrozenSet[int]:
        """Intern a POI's keyword set and bump each term's doc frequency.

        Terms are interned in sorted order so id assignment does not depend
        on set-iteration order (i.e., on ``PYTHONHASHSEED``) — term ids
        feed signature hashing, and reproducible runs need stable ids.
        """
        ids = set()
        for term in sorted(set(terms)):
            term_id = self.add(term)
            self._doc_freq[term_id] += 1
            ids.add(term_id)
        return frozenset(ids)

    def id_of(self, term: str) -> Optional[int]:
        """The id of ``term``, or ``None`` when unknown."""
        return self._term_to_id.get(term)

    def ids_of(self, terms: Iterable[str]) -> Optional[FrozenSet[int]]:
        """Ids of all ``terms``; ``None`` when any term is unknown.

        An unknown query keyword means the conjunctive query has no answers,
        so callers treat ``None`` as an immediate empty result.
        """
        ids = set()
        for term in terms:
            term_id = self._term_to_id.get(term)
            if term_id is None:
                return None
            ids.add(term_id)
        return frozenset(ids)

    def term_of(self, term_id: int) -> str:
        """The term string for ``term_id``."""
        return self._id_to_term[term_id]

    def doc_frequency(self, term_id: int) -> int:
        """Number of POIs whose keyword set contains the term."""
        return self._doc_freq[term_id]

    def terms(self) -> List[str]:
        """All interned terms in id order (a copy)."""
        return list(self._id_to_term)

    def most_frequent(self, limit: int) -> List[int]:
        """Ids of the ``limit`` highest-document-frequency terms."""
        order = sorted(range(len(self._doc_freq)),
                       key=lambda i: self._doc_freq[i], reverse=True)
        return order[:limit]
