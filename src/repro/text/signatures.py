"""Fixed-width keyword signatures (superimposed coding).

The MIR2-tree baseline [Felipe et al., ICDE'08] attaches a signature to each
R-tree node: the bitwise OR of the signatures of all keywords beneath it.  A
node can be pruned when the query signature is not a subset of the node
signature.  Signatures admit false positives (hash collisions) but never
false negatives, so pruning is safe.
"""

from __future__ import annotations

from typing import Iterable

#: Default signature width in bits.  Felipe et al. use widths in this range;
#: wider signatures mean fewer false positives and more space per node.
DEFAULT_SIGNATURE_BITS = 512

#: Hash functions per term, Bloom-filter style.
DEFAULT_HASHES = 3


class SignatureScheme:
    """Maps term ids to bit patterns and tests superset containment."""

    def __init__(self, bits: int = DEFAULT_SIGNATURE_BITS,
                 hashes: int = DEFAULT_HASHES) -> None:
        if bits <= 0 or hashes <= 0:
            raise ValueError(
                f"signature needs positive bits/hashes, got {bits}/{hashes}")
        self.bits = bits
        self.hashes = hashes

    def term_signature(self, term_id: int) -> int:
        """The bit pattern of a single term (an int used as a bitset)."""
        sig = 0
        # Deterministic double hashing: h_i(t) = (h1 + i*h2) mod bits.
        h1 = (term_id * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
        h2 = ((term_id + 1) * 0xC2B2AE3D27D4EB4F) & 0xFFFFFFFFFFFFFFFF
        h2 |= 1  # odd stride hits all residues when bits is a power of two
        for i in range(self.hashes):
            sig |= 1 << ((h1 + i * h2) % self.bits)
        return sig

    def signature_of(self, term_ids: Iterable[int]) -> int:
        """OR of the signatures of all ``term_ids``."""
        sig = 0
        for term_id in term_ids:
            sig |= self.term_signature(term_id)
        return sig

    @staticmethod
    def might_contain(node_signature: int, query_signature: int) -> bool:
        """False only when the node certainly lacks some query keyword."""
        return node_signature & query_signature == query_signature

    @property
    def bytes_per_signature(self) -> int:
        """Storage cost of one signature."""
        return (self.bits + 7) // 8
