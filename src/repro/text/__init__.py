"""Text substrate: tokenisation, vocabulary, inverted lists, signatures."""

from .inverted import InvertedIndex, intersect_sorted, union_sorted
from .signatures import (
    DEFAULT_HASHES,
    DEFAULT_SIGNATURE_BITS,
    SignatureScheme,
)
from .tokenizer import STOP_WORDS, join_keywords, keyword_set, tokenize
from .vocabulary import Vocabulary

__all__ = [
    "DEFAULT_HASHES",
    "DEFAULT_SIGNATURE_BITS",
    "STOP_WORDS",
    "InvertedIndex",
    "SignatureScheme",
    "Vocabulary",
    "intersect_sorted",
    "union_sorted",
    "join_keywords",
    "keyword_set",
    "tokenize",
]
