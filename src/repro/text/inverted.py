"""In-memory inverted index and sorted-list intersection.

This is the textbook substrate both DESKS and the LkT baseline build on: a
map from term id to a sorted list of document (POI / region) ids, plus the
k-way merge intersection used for conjunctive keyword matching.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence


def intersect_sorted(lists: Sequence[Sequence[int]]) -> List[int]:
    """Intersection of sorted id lists, shortest-first with galloping probes.

    Classic conjunctive-query evaluation: seed candidates from the shortest
    list and binary-search the rest, which is near-optimal when document
    frequencies are skewed (they are, under Zipf).
    """
    if not lists:
        return []
    ordered = sorted(lists, key=len)
    if not ordered[0]:
        return []
    result = list(ordered[0])
    for other in ordered[1:]:
        if not result:
            break
        kept = []
        pos = 0
        for value in result:
            pos = bisect_left(other, value, pos)
            if pos < len(other) and other[pos] == value:
                kept.append(value)
        result = kept
    return result


def union_sorted(lists: Sequence[Sequence[int]]) -> List[int]:
    """Union of sorted id lists, as a sorted, deduplicated list.

    Disjunctive-query evaluation: a k-way merge would be asymptotically
    nicer, but a heap-free merge over Python lists loses to sort() on the
    concatenation for realistic posting counts, so this does the simple
    thing.
    """
    merged = sorted({value for lst in lists for value in lst})
    return merged


class InvertedIndex:
    """Term id -> sorted unique document id postings."""

    def __init__(self) -> None:
        self._postings: Dict[int, List[int]] = {}
        self._frozen = False

    def add(self, term_id: int, doc_id: int) -> None:
        """Add one (term, document) pair; documents may arrive unsorted."""
        if self._frozen:
            raise RuntimeError("index is frozen; no further additions")
        self._postings.setdefault(term_id, []).append(doc_id)

    def add_document(self, doc_id: int, term_ids: Iterable[int]) -> None:
        """Add all of a document's terms."""
        for term_id in set(term_ids):
            self.add(term_id, doc_id)

    def freeze(self) -> None:
        """Sort and deduplicate every posting list; additions end here."""
        for term_id, docs in self._postings.items():
            docs.sort()
            deduped = []
            prev = None
            for d in docs:
                if d != prev:
                    deduped.append(d)
                    prev = d
            self._postings[term_id] = deduped
        self._frozen = True

    def postings(self, term_id: int) -> List[int]:
        """The posting list for ``term_id`` (empty when absent)."""
        self._require_frozen()
        return self._postings.get(term_id, [])

    def matching_documents(self, term_ids: Iterable[int],
                           ) -> Optional[List[int]]:
        """Documents containing *all* ``term_ids`` (conjunctive match).

        Returns ``None`` when any term has no postings at all — the caller
        can then skip work entirely, mirroring the unknown-keyword case.
        """
        self._require_frozen()
        lists = []
        for term_id in set(term_ids):
            posting = self._postings.get(term_id)
            if not posting:
                return None
            lists.append(posting)
        if not lists:
            return None
        return intersect_sorted(lists)

    @property
    def num_terms(self) -> int:
        """Number of distinct terms with at least one posting."""
        return len(self._postings)

    @property
    def num_postings(self) -> int:
        """Total number of (term, document) pairs."""
        return sum(len(p) for p in self._postings.values())

    def term_ids(self) -> List[int]:
        """All term ids present, sorted."""
        return sorted(self._postings)

    def _require_frozen(self) -> None:
        if not self._frozen:
            raise RuntimeError("freeze() the index before querying it")
