"""Keyword tokenisation.

POI descriptions in the paper are short keyword sets ("chinese food", shop
names, categories).  The tokenizer lower-cases, strips punctuation, and
drops a small stop-word list — enough to turn raw description strings into
the keyword sets the algorithms operate on.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Words too common to be useful as search keywords.
STOP_WORDS = frozenset({
    "a", "an", "and", "at", "by", "for", "in", "of", "on", "or",
    "the", "to", "with",
})


def tokenize(text: str, stop_words: FrozenSet[str] = STOP_WORDS,
             ) -> List[str]:
    """Split ``text`` into normalised keyword tokens, preserving order.

    Duplicates are kept (term-count statistics need them); use
    :func:`keyword_set` for the deduplicated set.
    """
    return [t for t in _TOKEN_RE.findall(text.lower())
            if t not in stop_words]


def keyword_set(text: str, stop_words: FrozenSet[str] = STOP_WORDS,
                ) -> FrozenSet[str]:
    """The deduplicated keyword set of ``text``."""
    return frozenset(tokenize(text, stop_words))


def join_keywords(keywords: Iterable[str]) -> str:
    """Render a keyword collection back to a canonical description string."""
    return " ".join(sorted(keywords))
