"""Geometric substrate: points, angles, rectangles, sectors, ray math.

Everything DESKS and the baselines need from plane geometry lives here, in
one place, so the pruning code reads like the paper's formulas.
"""

from .angles import (
    ANGLE_EPS,
    HALF_PI,
    TWO_PI,
    DirectionInterval,
    angle_between,
    angle_of,
    interval_from_optional,
    normalize_angle,
    quadrant_of,
    signed_angle,
    signed_angle_of,
)
from .frames import Anchor, CanonicalFrame, frames_for
from .intersections import (
    ray_circle_intersection,
    ray_ray_intersection,
    ray_rectangle_exit,
)
from .mbr import MBR
from .point import ORIGIN, Point
from .sector import (
    Sector,
    direction_overlaps_mbr,
    sector_intersects_mbr,
    subtended_interval,
)
from .vectorized import (
    arc_contains,
    arc_contains_vectors,
    directions_of,
    normalize_angles,
)

__all__ = [
    "ANGLE_EPS",
    "HALF_PI",
    "TWO_PI",
    "Anchor",
    "CanonicalFrame",
    "DirectionInterval",
    "MBR",
    "ORIGIN",
    "Point",
    "Sector",
    "direction_overlaps_mbr",
    "sector_intersects_mbr",
    "subtended_interval",
    "angle_between",
    "angle_of",
    "arc_contains",
    "arc_contains_vectors",
    "directions_of",
    "frames_for",
    "interval_from_optional",
    "normalize_angle",
    "normalize_angles",
    "quadrant_of",
    "ray_circle_intersection",
    "ray_ray_intersection",
    "ray_rectangle_exit",
    "signed_angle",
    "signed_angle_of",
]
