"""Ray intersections used by the pruning bounds — the paper's Eqs. 1-3.

All functions work in the *canonical frame*: the anchor corner sits at the
origin, the dataset rectangle is ``[0, L] x [0, H]``, and query directions
satisfy ``0 <= alpha <= beta <= pi/2``.  (:mod:`repro.geometry.frames` maps
the other three anchors onto this frame.)

* :func:`ray_circle_intersection` — Eq. 1: the point ``q_alpha^{r}`` where the
  ray from ``q`` with direction ``phi`` meets the arc of radius ``r`` centred
  at the origin.
* :func:`ray_ray_intersection` — Eq. 2: the point ``q_alpha^{theta}`` where
  the ray from ``q`` meets the ray from the origin with direction ``theta``.
* :func:`ray_rectangle_exit` — Eq. 3: the point ``q_alpha^{R}`` where the ray
  from ``q`` (inside the rectangle) exits the rectangle boundary.

Each returns ``None`` when no intersection exists in the forward direction of
the ray; the callers translate that into the corresponding pruning case.
"""

from __future__ import annotations

import math
from typing import Optional

from .point import Point

#: Forward-parameter tolerance: a ray "hits" a target even if floating-point
#: error puts the intersection infinitesimally behind the ray origin.
_T_EPS = 1e-12


def ray_circle_intersection(q: Point, phi: float, radius: float,
                            ) -> Optional[Point]:
    """First forward intersection of a ray with a circle about the origin.

    Solves the paper's Eq. 1: the point on the line through ``q`` with
    direction ``phi`` at distance ``radius`` from the origin.  When ``q`` is
    inside the circle there is exactly one forward hit; when outside there
    are zero or two and the nearer one is returned.
    """
    if radius < 0.0:
        raise ValueError(f"negative radius {radius!r}")
    dx = math.cos(phi)
    dy = math.sin(phi)
    # |q + t d|^2 = r^2  =>  t^2 + 2 (q . d) t + (|q|^2 - r^2) = 0, |d| = 1.
    b = q.x * dx + q.y * dy
    c = q.x * q.x + q.y * q.y - radius * radius
    disc = b * b - c
    if disc < 0.0:
        return None
    sqrt_disc = math.sqrt(disc)
    t_near = -b - sqrt_disc
    t_far = -b + sqrt_disc
    t = t_near if t_near >= -_T_EPS else t_far
    if t < -_T_EPS:
        return None
    t = max(t, 0.0)
    return Point(q.x + t * dx, q.y + t * dy)


def ray_ray_intersection(q: Point, phi: float, theta: float,
                         ) -> Optional[Point]:
    """Forward intersection of the ray ``(q, phi)`` with the origin ray.

    Solves the paper's Eq. 2: ``q + t (cos phi, sin phi) =
    s (cos theta, sin theta)`` with ``t, s >= 0``.  Returns ``None`` for
    parallel rays or intersections behind either ray.
    """
    ux, uy = math.cos(phi), math.sin(phi)
    vx, vy = math.cos(theta), math.sin(theta)
    denom = ux * vy - uy * vx  # cross(u, v)
    if abs(denom) < _T_EPS:
        # Parallel rays: collinear overlap degenerates to q itself when q lies
        # on the origin ray; treat everything else as no intersection.
        cross_q = q.x * vy - q.y * vx
        if abs(cross_q) < _T_EPS and q.x * vx + q.y * vy >= -_T_EPS:
            return q
        return None
    # cross(q, v) + t cross(u, v) = 0  from equating the two parametrisations.
    t = (vx * q.y - vy * q.x) / denom
    if t < -_T_EPS:
        return None
    px = q.x + max(t, 0.0) * ux
    py = q.y + max(t, 0.0) * uy
    # Verify the hit is on the forward half of the origin ray.
    if px * vx + py * vy < -_T_EPS:
        return None
    return Point(px, py)


def ray_rectangle_exit(q: Point, phi: float, length: float, height: float,
                       ) -> Optional[Point]:
    """Exit point of the ray ``(q, phi)`` from the rectangle ``[0,L]x[0,H]``.

    The paper's Eq. 3 handles the quadrant case (``0 <= phi <= pi/2``: exit
    through the top or right edge depending on ``phi`` versus the direction
    towards the top-right corner).  This implementation is the general
    Liang-Barsky style clip so it also serves queries near the boundary and
    the other quadrants after frame mapping.

    Returns ``None`` when ``q`` is outside the rectangle and the ray never
    enters it.
    """
    dx = math.cos(phi)
    dy = math.sin(phi)
    t_min = 0.0
    t_max = math.inf
    for delta, lo_bound, hi_bound, coord in (
        (dx, 0.0, length, q.x),
        (dy, 0.0, height, q.y),
    ):
        if abs(delta) < _T_EPS:
            if coord < lo_bound - _T_EPS or coord > hi_bound + _T_EPS:
                return None
            continue
        t0 = (lo_bound - coord) / delta
        t1 = (hi_bound - coord) / delta
        if t0 > t1:
            t0, t1 = t1, t0
        t_min = max(t_min, t0)
        t_max = min(t_max, t1)
    if t_max < t_min - _T_EPS or t_max < -_T_EPS:
        return None
    t = max(t_max, 0.0)
    return Point(q.x + t * dx, q.y + t * dy)
