"""Canonical-frame transforms for the four MBR anchor corners.

The paper builds one band/sub-region structure per corner of the dataset MBR
(``O_bl``, ``O_br``, ``O_tr``, ``O_tl``) and answers a *basic* query — one
whose direction interval fits inside a single quadrant — against the matching
corner.  All of the pruning mathematics (Lemmas 1-4, Eq. 4, Table I) is
stated for ``O_bl`` with directions in ``[0, pi/2]``.

Rather than re-deriving the formulas per corner, we map every corner onto the
``O_bl`` situation with an isometry of the plane:

====== ============================== =============================
anchor point map (canonical coords)    direction map
====== ============================== =============================
BL     ``(x - minx, y - miny)``        ``theta``
BR     ``(maxx - x, y - miny)``        ``pi - theta``   (x-reflection)
TR     ``(maxx - x, maxy - y)``        ``theta - pi``   (rotation)
TL     ``(x - minx, maxy - y)``        ``-theta``       (y-reflection)
====== ============================== =============================

Reflections reverse orientation, so direction *intervals* map with their
endpoints swapped.  All maps are isometries: distances — hence band radii and
MINDIST values — carry over unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Tuple

from .angles import HALF_PI, TWO_PI, DirectionInterval, normalize_angle
from .mbr import MBR
from .point import Point

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np


class Anchor(Enum):
    """The four corners of the dataset MBR, named as in the paper."""

    BOTTOM_LEFT = 0
    BOTTOM_RIGHT = 1
    TOP_RIGHT = 2
    TOP_LEFT = 3

    @classmethod
    def for_quadrant(cls, quadrant: int) -> "Anchor":
        """Anchor whose canonical frame serves directions in ``quadrant``.

        Quadrant ``i`` is ``[i*pi/2, (i+1)*pi/2]``; the paper assigns BL to
        the first quadrant, BR to the second, TR to the third, TL to the
        fourth (its Figures 10-12).
        """
        if quadrant not in (0, 1, 2, 3):
            raise ValueError(f"quadrant must be 0..3, got {quadrant!r}")
        return cls(quadrant)


@dataclass(frozen=True)
class CanonicalFrame:
    """Isometry taking one anchor corner onto the canonical BL situation.

    In canonical coordinates the anchor is the origin and the dataset
    rectangle is ``[0, length] x [0, height]``; every direction relevant to a
    basic query lies in ``[0, pi/2]``.
    """

    anchor: Anchor
    mbr: MBR

    @property
    def length(self) -> float:
        """Canonical rectangle horizontal extent (the paper's ``L``)."""
        return self.mbr.width

    @property
    def height(self) -> float:
        """Canonical rectangle vertical extent (the paper's ``H``)."""
        return self.mbr.height

    @property
    def anchor_point(self) -> Point:
        """The anchor corner in *world* coordinates."""
        return self.mbr.corners()[self.anchor.value]

    # -- point maps ----------------------------------------------------------

    def to_canonical(self, p: Point) -> Point:
        """World point -> canonical coordinates."""
        if self.anchor is Anchor.BOTTOM_LEFT:
            return Point(p.x - self.mbr.min_x, p.y - self.mbr.min_y)
        if self.anchor is Anchor.BOTTOM_RIGHT:
            return Point(self.mbr.max_x - p.x, p.y - self.mbr.min_y)
        if self.anchor is Anchor.TOP_RIGHT:
            return Point(self.mbr.max_x - p.x, self.mbr.max_y - p.y)
        return Point(p.x - self.mbr.min_x, self.mbr.max_y - p.y)

    def to_canonical_xy(self, xs: "np.ndarray", ys: "np.ndarray",
                        ) -> Tuple["np.ndarray", "np.ndarray"]:
        """Vectorised :meth:`to_canonical` over coordinate arrays.

        Accepts and returns numpy arrays (or anything supporting
        element-wise arithmetic); used by the index build, where per-point
        Python calls would dominate construction time.
        """
        if self.anchor is Anchor.BOTTOM_LEFT:
            return xs - self.mbr.min_x, ys - self.mbr.min_y
        if self.anchor is Anchor.BOTTOM_RIGHT:
            return self.mbr.max_x - xs, ys - self.mbr.min_y
        if self.anchor is Anchor.TOP_RIGHT:
            return self.mbr.max_x - xs, self.mbr.max_y - ys
        return xs - self.mbr.min_x, self.mbr.max_y - ys

    def from_canonical(self, p: Point) -> Point:
        """Canonical point -> world coordinates (inverse of the above)."""
        if self.anchor is Anchor.BOTTOM_LEFT:
            return Point(p.x + self.mbr.min_x, p.y + self.mbr.min_y)
        if self.anchor is Anchor.BOTTOM_RIGHT:
            return Point(self.mbr.max_x - p.x, p.y + self.mbr.min_y)
        if self.anchor is Anchor.TOP_RIGHT:
            return Point(self.mbr.max_x - p.x, self.mbr.max_y - p.y)
        return Point(p.x + self.mbr.min_x, self.mbr.max_y - p.y)

    # -- direction maps ---------------------------------------------------------

    def direction_to_canonical(self, theta: float) -> float:
        """World direction -> canonical direction."""
        if self.anchor is Anchor.BOTTOM_LEFT:
            return normalize_angle(theta)
        if self.anchor is Anchor.BOTTOM_RIGHT:
            return normalize_angle(math.pi - theta)
        if self.anchor is Anchor.TOP_RIGHT:
            return normalize_angle(theta - math.pi)
        return normalize_angle(-theta)

    def direction_from_canonical(self, theta: float) -> float:
        """Canonical direction -> world direction.

        Every one of the four maps is an involution up to normalisation, so
        the inverse is the map itself.
        """
        return self.direction_to_canonical(theta)

    def interval_to_canonical(
        self, interval: DirectionInterval
    ) -> DirectionInterval:
        """World direction interval -> canonical interval.

        Reflections (BR, TL) reverse orientation, so the mapped endpoints
        swap roles; the rotation (TR) and identity (BL) keep them in order.
        """
        if interval.is_full:
            return DirectionInterval.full()
        lo = self.direction_to_canonical(interval.lower)
        hi = self.direction_to_canonical(interval.upper)
        if self.anchor in (Anchor.BOTTOM_RIGHT, Anchor.TOP_LEFT):
            lo, hi = hi, lo
        if hi < lo:
            hi += TWO_PI
        # Guard: the width must be preserved by an isometry; re-anchor the
        # upper endpoint exactly to avoid drift from double normalisation.
        return DirectionInterval(lo, lo + interval.width)

    # -- convenience -----------------------------------------------------------

    def basic_interval(
        self, interval: DirectionInterval
    ) -> DirectionInterval:
        """Map a basic query's interval into ``[0, pi/2]`` of this frame.

        The caller guarantees the world interval lies inside this anchor's
        quadrant; the result is clamped onto ``[0, pi/2]`` to absorb
        floating-point spill at the quadrant boundaries.
        """
        mapped = self.interval_to_canonical(interval)
        lo = min(max(mapped.lower, 0.0), HALF_PI)
        hi = min(max(mapped.upper, lo), HALF_PI)
        return DirectionInterval(lo, hi)


def frames_for(mbr: MBR) -> Tuple[CanonicalFrame, CanonicalFrame,
                                  CanonicalFrame, CanonicalFrame]:
    """The four canonical frames of a dataset MBR, indexed by quadrant."""
    return tuple(CanonicalFrame(Anchor(i), mbr) for i in range(4))
