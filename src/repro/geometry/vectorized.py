"""Vectorised counterparts of the scalar angle helpers in ``angles``.

The columnar kernel (``repro.kernel``) verifies whole wedges of POIs at
once, which needs array versions of ``normalize_angle`` / ``angle_of`` /
``angle_between``.  They live here — not in the kernel — because DAL001
reserves raw ``atan2`` / ``fmod(..., 2*pi)`` for ``repro.geometry``: one
package owns direction normalisation, scalar or vectorised.

Bit-exactness contract (load-bearing for the kernel's equivalence
guarantee):

- ``normalize_angles`` is bit-identical to ``normalize_angle`` per
  element: ``np.fmod`` matches C ``fmod`` (exact by IEEE 754), and the
  two folds are exact additions/comparisons.
- ``directions_of`` is **approximate**: ``np.arctan2`` may differ from
  ``math.atan2`` by a few ulps on some platforms (measured here:
  ~7.8% of random inputs differ in the last ulp).  Callers that need
  the scalar answer must re-check borderline elements with
  ``angle_of`` — ``arc_contains`` reports exactly which elements are
  borderline for a caller-chosen slack.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

import numpy as np

from .angles import ANGLE_EPS, TWO_PI

if TYPE_CHECKING:  # pragma: no cover - typing only
    from numpy.typing import NDArray

    FloatArray = NDArray[np.float64]
    BoolArray = NDArray[np.bool_]


def normalize_angles(thetas: "FloatArray") -> "FloatArray":
    """Elementwise ``normalize_angle``: fold angles onto ``[0, 2*pi)``.

    Mirrors the scalar implementation branch for branch (``fmod``, add
    one period if negative, fold an exact ``2*pi`` back to ``0``) so the
    result is bit-identical per element.
    """
    out = np.fmod(np.asarray(thetas, dtype=np.float64), TWO_PI)
    out = np.where(out < 0.0, out + TWO_PI, out)
    return np.where(out >= TWO_PI, 0.0, out)


def directions_of(dxs: "FloatArray", dys: "FloatArray") -> "FloatArray":
    """Directions of the vectors ``(dx, dy)`` on ``[0, 2*pi)``.

    Vectorised ``angle_of`` up to ulp error: ``np.arctan2`` is not
    guaranteed bit-identical to ``math.atan2``.  Zero vectors map to
    ``0.0`` instead of raising — callers mask coincident points out
    before trusting the direction.
    """
    return normalize_angles(np.arctan2(dys, dxs))


def arc_contains(thetas: "FloatArray", lower: float, upper: float,
                 slack: float = 0.0) -> Tuple["BoolArray", "BoolArray"]:
    """Vectorised ``angle_between``: which ``thetas`` lie on the arc.

    Returns ``(inside, borderline)`` boolean masks.  ``inside`` applies
    the scalar rule exactly (offset from ``lower``, compared against the
    span with ``ANGLE_EPS``).  ``borderline`` marks elements whose
    offset falls within ``slack`` of a decision boundary — the inclusive
    upper limit, or the ``0`` / ``2*pi`` wrap where the ``fmod`` fold
    can flip sides — so a caller feeding ulp-approximate directions
    (``directions_of``) can re-check just those with the scalar
    ``angle_of`` + ``angle_between`` and keep bit-exact semantics.
    ``slack=0.0`` reports nothing borderline.
    """
    thetas = np.asarray(thetas, dtype=np.float64)
    span = upper - lower
    if span >= TWO_PI - ANGLE_EPS:  # full circle: everything is inside
        inside = np.ones(thetas.shape, dtype=bool)
        return inside, np.zeros(thetas.shape, dtype=bool)
    return _classify_offsets(normalize_angles(thetas - lower), span, slack)


def arc_contains_vectors(dxs: "FloatArray", dys: "FloatArray",
                         lower: float, upper: float, slack: float = 0.0,
                         ) -> Tuple["BoolArray", "BoolArray"]:
    """``arc_contains`` of the directions of the vectors ``(dx, dy)``.

    Fuses ``directions_of`` into the offset computation: the raw
    ``np.arctan2`` result feeds ``normalize_angles(theta - lower)``
    directly, skipping the intermediate fold onto ``[0, 2*pi)`` (one
    full-array pass).  The skipped fold changes at most the last few
    ulps of each offset — within any practical ``slack`` — and every
    element that close to a decision boundary is flagged borderline for
    scalar re-checking, so the prefilter-then-confirm contract is
    unchanged.  Zero vectors get direction ``0``; mask them out (the
    scalar path's coincident-point guard) before trusting the answer.
    """
    span = upper - lower
    if span >= TWO_PI - ANGLE_EPS:
        inside = np.ones(np.shape(dxs), dtype=bool)
        return inside, np.zeros(np.shape(dxs), dtype=bool)
    offsets = normalize_angles(np.arctan2(dys, dxs) - lower)
    return _classify_offsets(offsets, span, slack)


def _classify_offsets(offsets: "FloatArray", span: float, slack: float,
                      ) -> Tuple["BoolArray", "BoolArray"]:
    """Shared (inside, borderline) classification of arc offsets."""
    limit = span + ANGLE_EPS
    inside = offsets <= limit
    if slack <= 0.0:
        return inside, np.zeros(offsets.shape, dtype=bool)
    borderline = (np.abs(offsets - limit) <= slack) \
        | (offsets <= slack) | (offsets >= TWO_PI - slack)
    return inside, borderline
