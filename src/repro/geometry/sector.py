"""Circular sectors — the paper's search region ``S_q``.

Given a query ``q`` with direction interval ``[alpha, beta]``, the answer
region is the intersection of the sector centred at ``q`` (radius = maximal
distance from ``q`` to the dataset MBR boundary) with the dataset MBR.  The
sector type below provides the membership test used for verification and by
the brute-force oracle in the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from .angles import TWO_PI, DirectionInterval, normalize_angle
from .mbr import MBR
from .point import Point


@dataclass(frozen=True)
class Sector:
    """A circular sector: centre, radius, and a direction interval."""

    center: Point
    radius: float
    interval: DirectionInterval

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise ValueError(f"negative sector radius {self.radius!r}")

    def contains(self, p: Point) -> bool:
        """True when ``p`` lies inside the sector.

        The centre itself is considered inside (it has no direction but zero
        distance; the paper's queries never return the query point because
        POIs at distance 0 in the query direction are a measure-zero corner,
        and including the centre keeps the membership test total).
        """
        if p == self.center:
            return True
        if self.center.distance_to(p) > self.radius:
            return False
        return self.interval.contains(self.center.direction_to(p))

    @classmethod
    def covering_mbr(cls, center: Point, interval: DirectionInterval,
                     mbr: MBR) -> "Sector":
        """The paper's ``S_q``: radius = max distance from centre to ``R``.

        With this radius the sector's intersection with ``mbr`` equals the
        full direction-constrained search region ``R_q``.
        """
        return cls(center, mbr.max_distance_to_point(center), interval)

    def search_region_contains(self, p: Point, mbr: MBR) -> bool:
        """Membership in ``R_q`` = sector intersected with the dataset MBR."""
        return mbr.contains_point(p) and self.contains(p)


def subtended_interval(center: Point, mbr: MBR,
                       ) -> Optional[DirectionInterval]:
    """The direction interval an MBR subtends as seen from ``center``.

    ``None`` means every direction (``center`` inside or on the rectangle).
    For a convex shape and an external viewpoint the subtended direction set
    is exactly the minimal arc covering the corner directions — found as the
    complement of the largest angular gap between consecutive corners.
    """
    if mbr.contains_point(center):
        return None
    angles: List[float] = sorted(
        normalize_angle(center.direction_to(corner))
        for corner in mbr.corners())
    largest_gap = TWO_PI - (angles[-1] - angles[0])
    gap_end = 0  # index of the angle *after* the largest gap
    for i in range(1, len(angles)):
        gap = angles[i] - angles[i - 1]
        if gap > largest_gap:
            largest_gap = gap
            gap_end = i
    lower = angles[gap_end]
    width = TWO_PI - largest_gap
    return DirectionInterval(lower, lower + width)


def direction_overlaps_mbr(center: Point, interval: DirectionInterval,
                           mbr: MBR) -> bool:
    """True unless the MBR lies entirely outside the query direction.

    This is the "examine whether each accessed MBR is in the search
    direction" check the paper adds to the baselines (Sec. VI): exact for
    rectangles, because the subtended direction set from an external point
    is a single arc.
    """
    if interval.is_full:
        return True
    subtended = subtended_interval(center, mbr)
    if subtended is None:
        return True
    return interval.overlaps(subtended)


def sector_intersects_mbr(center: Point, interval: DirectionInterval,
                          mbr: MBR, radius: float = math.inf) -> bool:
    """Can the sector ``(center, interval, radius)`` contain a point of
    ``mbr``?

    This is the shard-level pruning test of the scatter-gather layer: a
    shard whose MBR fails it provably holds no answers, the same way
    Lemmas 2-4 discard sub-regions inside one index.  The direction test is
    exact (the subtended direction set of a rectangle seen from an external
    point is a single arc); the radius test uses ``MINDIST`` and is
    *conservative* — the nearest rectangle point may itself be out of
    direction — so the function can return True for an empty intersection
    but never False for a non-empty one, which is the safe side for
    pruning.  A center on or inside the rectangle always intersects
    (distance zero, every direction).
    """
    if radius < 0.0:
        raise ValueError(f"negative sector radius {radius!r}")
    if mbr.contains_point(center):
        return True
    if mbr.min_distance_to_point(center) > radius:
        return False
    return direction_overlaps_mbr(center, interval, mbr)
