"""Minimum bounding rectangles.

Used in two roles:

* the dataset-wide MBR ``R`` whose four corners anchor the DESKS index
  (``O_bl``, ``O_br``, ``O_tr``, ``O_tl`` in the paper), and
* node rectangles inside the from-scratch R-tree used by the baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from .point import Point


@dataclass(frozen=True)
class MBR:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"degenerate MBR bounds ({self.min_x}, {self.min_y}, "
                f"{self.max_x}, {self.max_y})"
            )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "MBR":
        """Smallest MBR containing all ``points`` (at least one required)."""
        it = iter(points)
        try:
            first = next(it)
        except StopIteration:
            raise ValueError("cannot build an MBR from zero points") from None
        min_x = max_x = first.x
        min_y = max_y = first.y
        for p in it:
            if p.x < min_x:
                min_x = p.x
            elif p.x > max_x:
                max_x = p.x
            if p.y < min_y:
                min_y = p.y
            elif p.y > max_y:
                max_y = p.y
        return cls(min_x, min_y, max_x, max_y)

    @classmethod
    def of_point(cls, p: Point) -> "MBR":
        """A zero-area MBR at a single point."""
        return cls(p.x, p.y, p.x, p.y)

    # -- corners (paper notation) --------------------------------------------

    @property
    def bottom_left(self) -> Point:
        """The paper's ``O_bl``."""
        return Point(self.min_x, self.min_y)

    @property
    def bottom_right(self) -> Point:
        """The paper's ``O_br``."""
        return Point(self.max_x, self.min_y)

    @property
    def top_right(self) -> Point:
        """The paper's ``O_tr``."""
        return Point(self.max_x, self.max_y)

    @property
    def top_left(self) -> Point:
        """The paper's ``O_tl``."""
        return Point(self.min_x, self.max_y)

    def corners(self) -> Tuple[Point, Point, Point, Point]:
        """All four corners in ``(bl, br, tr, tl)`` order."""
        return (self.bottom_left, self.bottom_right,
                self.top_right, self.top_left)

    # -- extents -------------------------------------------------------------

    @property
    def width(self) -> float:
        """Horizontal extent (the paper's ``L``)."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Vertical extent (the paper's ``H``)."""
        return self.max_y - self.min_y

    @property
    def diagonal(self) -> float:
        """Length of the diagonal — the maximal in-rectangle distance."""
        return math.hypot(self.width, self.height)

    def area(self) -> float:
        """Rectangle area (R-tree split heuristic input)."""
        return self.width * self.height

    def margin(self) -> float:
        """Half-perimeter (R*-style split heuristic input)."""
        return self.width + self.height

    def center(self) -> Point:
        """The rectangle's centroid."""
        return Point((self.min_x + self.max_x) / 2.0,
                     (self.min_y + self.max_y) / 2.0)

    # -- predicates ----------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True when ``p`` lies inside or on the boundary."""
        return (self.min_x <= p.x <= self.max_x
                and self.min_y <= p.y <= self.max_y)

    def contains_mbr(self, other: "MBR") -> bool:
        """True when ``other`` lies entirely inside ``self``."""
        return (self.min_x <= other.min_x and other.max_x <= self.max_x
                and self.min_y <= other.min_y and other.max_y <= self.max_y)

    def intersects(self, other: "MBR") -> bool:
        """True when the two rectangles share at least a boundary point."""
        return not (other.min_x > self.max_x or other.max_x < self.min_x
                    or other.min_y > self.max_y or other.max_y < self.min_y)

    # -- combination ----------------------------------------------------------

    def union(self, other: "MBR") -> "MBR":
        """Smallest MBR covering both rectangles."""
        return MBR(min(self.min_x, other.min_x), min(self.min_y, other.min_y),
                   max(self.max_x, other.max_x), max(self.max_y, other.max_y))

    def extend_to_point(self, p: Point) -> "MBR":
        """Smallest MBR covering ``self`` and ``p``."""
        return MBR(min(self.min_x, p.x), min(self.min_y, p.y),
                   max(self.max_x, p.x), max(self.max_y, p.y))

    @staticmethod
    def union_all(mbrs: Sequence["MBR"]) -> "MBR":
        """Union of a non-empty sequence of MBRs."""
        if not mbrs:
            raise ValueError("cannot union zero MBRs")
        out = mbrs[0]
        for m in mbrs[1:]:
            out = out.union(m)
        return out

    def enlargement(self, other: "MBR") -> float:
        """Area growth if ``self`` were extended to also cover ``other``.

        The classic Guttman insertion heuristic.
        """
        return self.union(other).area() - self.area()

    # -- distances -------------------------------------------------------------

    def min_distance_to_point(self, p: Point) -> float:
        """The classic ``MINDIST(q, mbr)`` of Roussopoulos et al. [10, 18].

        Zero when ``p`` is inside the rectangle.
        """
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return math.hypot(dx, dy)

    def max_distance_to_point(self, p: Point) -> float:
        """Distance from ``p`` to the farthest point of the rectangle."""
        dx = max(p.x - self.min_x, self.max_x - p.x)
        dy = max(p.y - self.min_y, self.max_y - p.y)
        return math.hypot(dx, dy)

    def __iter__(self) -> Iterator[float]:
        yield self.min_x
        yield self.min_y
        yield self.max_x
        yield self.max_y

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"MBR({self.min_x:g}, {self.min_y:g}, "
                f"{self.max_x:g}, {self.max_y:g})")
