"""Angle arithmetic on the circle ``[0, 2*pi)``.

Every direction in this library is a plain ``float`` in radians, measured
counter-clockwise from the positive x-axis, exactly as in the paper.  A
*direction interval* ``[alpha, beta]`` is represented by
:class:`DirectionInterval`, which normalises ``alpha`` into ``[0, 2*pi)`` and
allows ``beta`` up to ``alpha + 2*pi`` so that intervals crossing the positive
x-axis (e.g. *north-west through north-east*) are first-class values.

The paper decomposes an arbitrary interval into at most four *basic* queries,
one per quadrant (five if the raw interval wraps past ``2*pi``); that
decomposition lives in :meth:`DirectionInterval.decompose_quadrants`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

TWO_PI = 2.0 * math.pi
HALF_PI = 0.5 * math.pi

#: Tolerance used for angle comparisons throughout the library.  Directions
#: are derived from ``atan2`` on coordinates, so errors are a few ULPs; 1e-12
#: is comfortably above that while far below any meaningful angular width.
ANGLE_EPS = 1e-12


def normalize_angle(theta: float) -> float:
    """Map ``theta`` (radians, any magnitude) into ``[0, 2*pi)``.

    >>> normalize_angle(-math.pi / 2) == 1.5 * math.pi
    True
    """
    theta = math.fmod(theta, TWO_PI)
    if theta < 0.0:
        theta += TWO_PI
    # fmod of a value infinitesimally below a multiple of 2*pi can round to
    # exactly TWO_PI after the correction above; fold it back to 0.
    if theta >= TWO_PI:
        theta -= TWO_PI
    return theta


def angle_of(dx: float, dy: float) -> float:
    """Direction of the vector ``(dx, dy)`` as an angle in ``[0, 2*pi)``.

    This is the paper's ``arctan(dy/dx)`` generalised to all quadrants.
    The zero vector has no direction; ``ValueError`` is raised for it.
    """
    if dx == 0.0 and dy == 0.0:
        raise ValueError("the zero vector has no direction")
    return normalize_angle(math.atan2(dy, dx))


def signed_angle_of(dx: float, dy: float) -> float:
    """Direction of ``(dx, dy)`` as a *signed* angle in ``(-pi, pi]``.

    Some derivations (e.g. the mindist apex-angle cases) compare a
    direction against bounds that live near zero; normalising into
    ``[0, 2*pi)`` would fling a slightly-negative angle to just below
    ``2*pi`` and break those comparisons.  This is the one sanctioned
    signed ``atan2`` in the library — everything outside
    ``repro.geometry`` must call it (or :func:`angle_of`) instead of
    ``math.atan2`` directly (lint rule DAL001).

    The zero vector has no direction; ``ValueError`` is raised for it.
    """
    if dx == 0.0 and dy == 0.0:
        raise ValueError("the zero vector has no direction")
    return math.atan2(dy, dx)


def signed_angle(theta: float) -> float:
    """Map ``theta`` (radians, any magnitude) into ``(-pi, pi]``.

    The signed counterpart of :func:`normalize_angle`, for code that
    reasons about deviations around a reference direction rather than
    absolute positions on the circle.
    """
    theta = normalize_angle(theta)
    if theta > math.pi:
        theta -= TWO_PI
    return theta


def angle_between(theta: float, lower: float, upper: float) -> bool:
    """Return True if ``theta`` lies on the CCW arc from ``lower`` to ``upper``.

    All three angles may be arbitrary floats; ``upper`` is interpreted as lying
    at most one full turn CCW from ``lower``.
    """
    span = upper - lower
    if span >= TWO_PI - ANGLE_EPS:
        return True
    offset = normalize_angle(theta - lower)
    return offset <= span + ANGLE_EPS


def quadrant_of(theta: float) -> int:
    """Index in ``{0, 1, 2, 3}`` of the quadrant containing ``theta``.

    Quadrant ``i`` is the half-open arc ``[i*pi/2, (i+1)*pi/2)``.
    """
    theta = normalize_angle(theta)
    q = int(theta / HALF_PI)
    return min(q, 3)


@dataclass(frozen=True)
class DirectionInterval:
    """A closed direction interval ``[lower, upper]`` on the circle.

    ``lower`` is normalised to ``[0, 2*pi)``; ``upper`` satisfies
    ``lower <= upper <= lower + 2*pi``.  An interval of width ``2*pi`` covers
    every direction (the paper's unconstrained query).
    """

    lower: float
    upper: float

    def __post_init__(self) -> None:
        lo = normalize_angle(self.lower)
        width = self.upper - self.lower
        if width < 0.0:
            raise ValueError(
                f"interval upper bound {self.upper!r} precedes lower bound "
                f"{self.lower!r}"
            )
        if width > TWO_PI + ANGLE_EPS:
            raise ValueError(
                f"interval [{self.lower!r}, {self.upper!r}] is wider than a "
                "full turn"
            )
        width = min(width, TWO_PI)
        object.__setattr__(self, "lower", lo)
        object.__setattr__(self, "upper", lo + width)

    # -- constructors ------------------------------------------------------

    @classmethod
    def full(cls) -> "DirectionInterval":
        """The unconstrained interval covering all directions."""
        return cls(0.0, TWO_PI)

    @classmethod
    def centered(cls, center: float, width: float) -> "DirectionInterval":
        """Interval of ``width`` radians centred on ``center``."""
        if width < 0.0 or width > TWO_PI:
            raise ValueError(f"width {width!r} outside [0, 2*pi]")
        return cls(center - width / 2.0, center + width / 2.0)

    # -- basic queries -----------------------------------------------------

    @property
    def width(self) -> float:
        """Angular width in radians, in ``[0, 2*pi]``."""
        return self.upper - self.lower

    @property
    def is_full(self) -> bool:
        """True when every direction is inside the interval."""
        return self.width >= TWO_PI - ANGLE_EPS

    def contains(self, theta: float) -> bool:
        """True when direction ``theta`` lies inside the interval."""
        return angle_between(theta, self.lower, self.upper)

    def midpoint(self) -> float:
        """Direction at the middle of the interval, normalised."""
        return normalize_angle(self.lower + self.width / 2.0)

    # -- interval algebra ---------------------------------------------------

    def widen(self, by_lower: float, by_upper: float) -> "DirectionInterval":
        """Grow the interval by ``by_lower`` CW and ``by_upper`` CCW."""
        if by_lower < 0.0 or by_upper < 0.0:
            raise ValueError("widen() takes non-negative extensions")
        width = min(self.width + by_lower + by_upper, TWO_PI)
        return DirectionInterval(self.lower - by_lower,
                                 self.lower - by_lower + width)

    def rotate(self, delta: float) -> "DirectionInterval":
        """Rotate the whole interval by ``delta`` radians CCW."""
        return DirectionInterval(self.lower + delta, self.upper + delta)

    def intersect(self, other: "DirectionInterval") -> List["DirectionInterval"]:
        """Intersection with ``other`` as a list of disjoint intervals.

        Two arcs on a circle can overlap in zero, one or two pieces (two when
        both are wide and their complements are disjoint).
        """
        if self.is_full:
            return [other]
        if other.is_full:
            return [self]
        pieces: List[DirectionInterval] = []
        # Work on the universal cover: other occupies [b, b + w) possibly
        # shifted by 2*pi either way relative to self's [a, a + v).
        a, v = self.lower, self.width
        b, w = other.lower, other.width
        for shift in (-TWO_PI, 0.0, TWO_PI):
            lo = max(a, b + shift)
            hi = min(a + v, b + shift + w)
            if hi - lo > ANGLE_EPS:
                pieces.append(DirectionInterval(lo, hi))
        return pieces

    def overlaps(self, other: "DirectionInterval") -> bool:
        """True when the two intervals share at least one direction."""
        if self.is_full or other.is_full:
            return True
        offset = normalize_angle(other.lower - self.lower)
        if offset <= self.width + ANGLE_EPS:
            return True
        back = normalize_angle(self.lower - other.lower)
        return back <= other.width + ANGLE_EPS

    # -- quadrant decomposition (paper Sec. IV-B) ----------------------------

    def decompose_quadrants(self) -> List[Tuple[int, "DirectionInterval"]]:
        """Split into per-quadrant pieces, the paper's basic sub-queries.

        Returns ``(quadrant, piece)`` pairs where each ``piece`` lies entirely
        inside quadrant ``[q*pi/2, (q+1)*pi/2]``.  At most four pieces are
        produced for a non-full interval (five raw pieces merge to four
        because a wrap-around re-enters a quadrant already covered; we merge
        duplicates per quadrant since the union is what the search visits).
        """
        if self.is_full:
            return [
                (q, DirectionInterval(q * HALF_PI, (q + 1) * HALF_PI))
                for q in range(4)
            ]
        if self.width <= ANGLE_EPS:
            # A degenerate (single-ray) interval still needs one piece, or a
            # zero-width query would vanish in decomposition.
            return [(quadrant_of(self.lower), self)]
        pieces: List[Tuple[int, DirectionInterval]] = []
        end = self.upper  # lower <= end <= lower + 2*pi on the cover
        cursor = self.lower
        while cursor < end - ANGLE_EPS:
            # Snap a cursor sitting within epsilon of a quadrant boundary
            # onto it, so the piece is attributed to the quadrant it is
            # (numerically) about to enter rather than the one it left.
            boundary = round(cursor / HALF_PI) * HALF_PI
            if abs(cursor - boundary) < ANGLE_EPS:
                cursor = boundary
            q = quadrant_of(cursor)
            offset = normalize_angle(cursor) - q * HALF_PI
            piece_end = min(end, cursor + (HALF_PI - max(offset, 0.0)))
            if piece_end - cursor > ANGLE_EPS:
                pieces.append((q, DirectionInterval(cursor, piece_end)))
            cursor = piece_end
        return _merge_quadrant_pieces(pieces)

    # -- dunder -------------------------------------------------------------

    def __iter__(self) -> Iterator[float]:
        yield self.lower
        yield self.upper

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DirectionInterval({self.lower:.6f}, {self.upper:.6f})"


def _merge_quadrant_pieces(
    pieces: List[Tuple[int, DirectionInterval]],
) -> List[Tuple[int, DirectionInterval]]:
    """Merge decomposition pieces that landed in the same quadrant.

    A wrapping interval can enter the same quadrant twice (head and tail).
    The merged piece is the smallest interval inside the quadrant covering
    both; searching a slightly larger arc is sound (extra candidates are
    re-verified against the exact query interval) and keeps the per-quadrant
    machinery simple.
    """
    by_quadrant: dict[int, DirectionInterval] = {}
    order: List[int] = []
    for q, piece in pieces:
        if q not in by_quadrant:
            by_quadrant[q] = piece
            order.append(q)
        else:
            prev = by_quadrant[q]
            q_lo, q_hi = q * HALF_PI, (q + 1) * HALF_PI
            lo = min(_cover_in(prev.lower, q_lo), _cover_in(piece.lower, q_lo))
            hi = max(_cover_in(prev.upper, q_lo, upper=True),
                     _cover_in(piece.upper, q_lo, upper=True))
            by_quadrant[q] = DirectionInterval(max(lo, q_lo), min(hi, q_hi))
    return [(q, by_quadrant[q]) for q in order]


def _cover_in(theta: float, base: float, upper: bool = False) -> float:
    """Lift ``theta`` onto the cover segment ``[base, base + pi/2]``."""
    t = normalize_angle(theta)
    b = normalize_angle(base)
    off = t - b
    if off < -ANGLE_EPS:
        off += TWO_PI
    if upper and off < ANGLE_EPS:
        off = HALF_PI  # an upper endpoint at the boundary belongs at the top
    return base + off


def interval_from_optional(
    alpha: Optional[float], beta: Optional[float]
) -> DirectionInterval:
    """Build an interval from possibly-missing bounds (None => full circle)."""
    if alpha is None or beta is None:
        return DirectionInterval.full()
    return DirectionInterval(alpha, beta)
