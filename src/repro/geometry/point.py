"""Planar points and the distance/direction primitives the paper relies on."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from .angles import angle_of


@dataclass(frozen=True)
class Point:
    """An immutable point in the plane.

    The paper measures two quantities from a point: Euclidean distance
    (``dist`` in the paper) and direction (``theta``, via ``arctan``); both
    are methods here so all call sites share one implementation.
    """

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other`` (the paper's ``dist(p, q)``)."""
        return math.hypot(other.x - self.x, other.y - self.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance; cheaper when only comparing."""
        dx = other.x - self.x
        dy = other.y - self.y
        return dx * dx + dy * dy

    def direction_to(self, other: "Point") -> float:
        """Direction of ``other`` as seen from ``self``, in ``[0, 2*pi)``.

        This is the paper's ``theta(q, p)``.  Raises ``ValueError`` when the
        two points coincide (no direction is defined).
        """
        return angle_of(other.x - self.x, other.y - self.y)

    def coincides(self, other: "Point") -> bool:
        """True when ``other`` occupies exactly the same coordinates.

        This is the paper's "p = q" guard (no direction is defined
        between coincident points) as a named predicate: comparing two
        ``Point``s with raw ``==`` on floats is flagged by lint rule
        DAL002 because at most call sites a tolerance is wanted — the
        sanctioned exact test lives here, where the exactness is the
        point (a POI *at* the query location has distance exactly 0
        regardless of float noise, because both were built from the
        same coordinates).
        """
        return self.x == other.x and self.y == other.y

    def translate(self, dx: float, dy: float) -> "Point":
        """A new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """The point as a plain ``(x, y)`` tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Point({self.x:g}, {self.y:g})"


ORIGIN = Point(0.0, 0.0)
