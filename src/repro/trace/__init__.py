"""repro.trace — per-query span tracing and EXPLAIN.

The aggregate metrics in :mod:`repro.service` say how the system is doing;
this package says where *one query* spent its time and I/O.  A
:class:`Tracer` activated around any entry point — a raw
:meth:`~repro.core.DesksSearcher.search`, a
:meth:`~repro.service.QueryEngine.execute`, a whole
:meth:`~repro.cluster.ShardRouter.execute` scatter-gather — collects a
span tree from every instrumented layer it passes through, with page
reads and pruning decisions attributed per stage.  :func:`explain` wraps
one search into a plan/actuals/reconciliation report, and
:class:`TraceSink` folds finished traces back into a
:class:`~repro.service.MetricsRegistry`.

Tracing is per-request opt-in.  When no tracer is active, instrumented
code pays one ``ContextVar`` read and allocates nothing.
"""

from .explain import ExplainReport, explain
from .sink import DEFAULT_COUNTER_ATTRS, TraceSink
from .spans import Span, Tracer, current_span, current_tracer, traced

__all__ = [
    "DEFAULT_COUNTER_ATTRS",
    "ExplainReport",
    "Span",
    "TraceSink",
    "Tracer",
    "current_span",
    "current_tracer",
    "explain",
    "traced",
]
