"""Feeding span aggregates into the metrics registry.

Tracing answers "why was *this* query slow"; metrics answer "how is the
service doing".  :class:`TraceSink` bridges them: attach one to a
:class:`~repro.trace.Tracer` (or pass ``tracing=True`` to
:class:`~repro.service.QueryEngine` / :class:`~repro.cluster.ShardRouter`)
and every finished trace feeds per-stage latency histograms and counter
totals into the existing :class:`~repro.service.MetricsRegistry` — the
service and cluster dashboards get stage-level breakdowns for free,
without a second telemetry pipeline.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .spans import Tracer

#: Numeric span attributes rolled up into registry counters by default.
DEFAULT_COUNTER_ATTRS: Sequence[str] = (
    "pages_read",
    "pois_fetched",
    "pois_verified",
    "subregions_examined",
    "subregions_pruned",
)


class TraceSink:
    """Aggregates finished traces into a ``MetricsRegistry``.

    For every span named ``a.b`` the sink observes its duration in the
    histogram ``span_a_b_seconds`` and, for each attribute listed in
    ``counter_attrs`` present on the span, increments the counter
    ``span_a_b_<attr>_total``.  The registry is duck-typed (anything with
    ``histogram(name).observe`` and ``counter(name).increment``), so the
    sink has no import-time dependency on :mod:`repro.service`.
    """

    def __init__(self, registry,
                 counter_attrs: Optional[Sequence[str]] = None) -> None:
        self.registry = registry
        self.counter_attrs = (tuple(counter_attrs)
                              if counter_attrs is not None
                              else tuple(DEFAULT_COUNTER_ATTRS))
        self.traces_observed = 0

    def observe(self, tracer: Tracer) -> None:
        """Roll one finished tracer's spans into the registry."""
        self.traces_observed += 1
        for span in tracer.walk():
            stem = "span_" + span.name.replace(".", "_").replace("-", "_")
            self.registry.histogram(f"{stem}_seconds").observe(span.seconds)
            for attr in self.counter_attrs:
                value = span.attrs.get(attr)
                if isinstance(value, bool) or not isinstance(value, int):
                    continue
                if value > 0:
                    self.registry.counter(
                        f"{stem}_{attr}_total").increment(value)
