"""``EXPLAIN ANALYZE`` for DESKS queries.

:func:`explain` runs one query under a fresh :class:`~repro.trace.Tracer`
and packages three views of it into an :class:`ExplainReport`:

* **plan** — what the searcher will do before touching data: the quadrant
  decomposition of the direction interval (paper Sec. IV-B), which pruning
  lemmas are armed, and the index shape (bands × wedges per anchor);
* **actuals** — what it did: bands scanned vs skipped by Lemma 1,
  sub-regions window-pruned (Lemmas 2-4) vs MINDIST-pruned, POIs fetched
  and verified, logical page reads, the full span tree;
* **reconciliation** — the span totals checked *exactly* against the
  :class:`~repro.storage.SearchStats` / :class:`~repro.storage.IOStats`
  counters of the very same search.  A mismatch means the tracer is lying
  about where cost went, so tests assert ``report.reconciled``.

Imports of :mod:`repro.core` are deferred into the function bodies:
``repro.core.search`` imports :mod:`repro.trace.spans`, so a module-level
import here would be circular.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .spans import Tracer

#: ``span total -> SearchStats counter`` pairs checked by reconciliation.
RECONCILED_COUNTERS = (
    ("pois_fetched", "pois_examined"),
    ("pois_verified", "candidates_verified"),
    ("subregions_examined", "subregions_examined"),
    ("bands_scanned", "regions_examined"),
)


@dataclass
class ExplainReport:
    """Structured plan/actuals/reconciliation for one explained query.

    ``trace`` keeps the live :class:`~repro.trace.Tracer`; everything else
    is plain dicts/lists ready for JSON.
    """

    query: Dict[str, Any]
    mode: str
    plan: Dict[str, Any]
    actuals: Dict[str, Any]
    reconciliation: List[Dict[str, Any]]
    results: List[Dict[str, Any]]
    trace: Tracer

    @property
    def reconciled(self) -> bool:
        """True when every span total matched its independent counter."""
        return all(row["match"] for row in self.reconciliation)

    def to_dict(self) -> Dict[str, Any]:
        """The whole report as one JSON-ready dict (trace included)."""
        return {
            "query": self.query,
            "mode": self.mode,
            "plan": self.plan,
            "actuals": self.actuals,
            "reconciliation": self.reconciliation,
            "reconciled": self.reconciled,
            "results": self.results,
            "trace": self.trace.to_dict(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """Human-readable report: plan, span tree, actuals, reconciliation."""
        lines = [
            f"EXPLAIN {self.query['keywords']} k={self.query['k']} "
            f"interval=[{self.query['interval'][0]:.4f}, "
            f"{self.query['interval'][1]:.4f}] mode={self.mode}",
            "plan:",
        ]
        pruning = self.plan["pruning"]
        lines.append(
            f"  pruning: region(Lemma 1)={'on' if pruning['region'] else 'off'}"
            f" direction(Lemmas 2-4)={'on' if pruning['direction'] else 'off'}")
        lines.append(
            f"  index: {self.plan['index']['num_bands']} bands x "
            f"{self.plan['index']['num_wedges']} wedges per anchor"
            + (" (disk-based)" if self.plan["index"]["disk_based"] else ""))
        for sub in self.plan["subqueries"]:
            lines.append(
                f"  subquery quadrant={sub['quadrant']} interval="
                f"[{sub['interval'][0]:.4f}, {sub['interval'][1]:.4f}]")
        lines.append("spans:")
        lines.extend("  " + line for line in self.trace.render().splitlines())
        lines.append("actuals:")
        for key, value in self.actuals.items():
            lines.append(f"  {key}={value}")
        lines.append("reconciliation ("
                     + ("OK" if self.reconciled else "MISMATCH") + "):")
        for row in self.reconciliation:
            status = "ok" if row["match"] else "MISMATCH"
            lines.append(
                f"  {row['quantity']}: span={row['span']} "
                f"independent={row['independent']} [{status}]")
        return "\n".join(lines)


def explain(index, query, mode=None, sink=None) -> ExplainReport:
    """Run ``query`` against ``index`` traced, and account for every cost.

    ``index`` is a :class:`~repro.core.DesksIndex` (or anything exposing a
    compatible ``search``/``io_stats``).  ``mode`` is a
    :class:`~repro.core.PruningMode` or its name (``"R"``/``"D"``/``"RD"``,
    default ``RD``).  ``sink`` optionally receives the finished tracer
    (see :class:`~repro.trace.TraceSink`).

    The search runs once, with a fresh tracer active and an independent
    :class:`~repro.storage.SearchStats`; the report's reconciliation
    section proves the span tree accounts for exactly the pages and
    pruning work the counters saw.
    """
    from ..core.search import DesksSearcher, PruningMode
    from ..storage import SearchStats

    if mode is None:
        mode = PruningMode.RD
    elif isinstance(mode, str):
        mode = PruningMode[mode]

    search = getattr(index, "search", None)
    if not callable(search):
        search = DesksSearcher(index).search
    io_stats = getattr(index, "io_stats", None)
    if io_stats is None:
        io_stats = getattr(getattr(index, "index", None), "io_stats", None)

    stats = SearchStats()
    tracer = Tracer(sink=sink)
    io_before = io_stats.snapshot() if io_stats is not None else None
    with tracer.activate():
        result = search(query, mode=mode, stats=stats)
    io_delta = (io_before.delta(io_stats.snapshot())
                if io_before is not None else None)

    root = tracer.find("desks.search")
    attrs = root.attrs if root is not None else {}

    reconciliation = [
        _row(quantity, attrs.get(span_key, 0), getattr(stats, stats_key))
        for span_key, stats_key in RECONCILED_COUNTERS
        for quantity in (span_key,)
    ]
    if io_delta is not None:
        reconciliation.append(_row(
            "pages_read", attrs.get("pages_read", 0), io_delta.logical_reads))

    actuals = {
        "seconds": root.seconds if root is not None else 0.0,
        "results": len(result),
        "partial": result.partial,
        "terminated_early": attrs.get("terminated_early", False),
        "bands_scanned": attrs.get("bands_scanned", 0),
        "bands_skipped_lemma1": attrs.get("bands_skipped_lemma1", 0),
        "subregions_examined": attrs.get("subregions_examined", 0),
        "subregions_pruned": attrs.get("subregions_pruned", 0),
        "mindist_evaluations": attrs.get("mindist_evaluations", 0),
        "pois_fetched": attrs.get("pois_fetched", 0),
        "pois_verified": attrs.get("pois_verified", 0),
        "pages_read": attrs.get("pages_read", 0),
        "distance_computations": stats.distance_computations,
    }
    if io_delta is not None:
        actuals["physical_reads"] = io_delta.physical_reads
        actuals["cache_hits"] = io_delta.cache_hits

    return ExplainReport(
        query=_query_summary(query),
        mode=mode.name,
        plan=_plan(index, query, mode),
        actuals=actuals,
        reconciliation=reconciliation,
        results=[{"poi_id": e.poi_id, "distance": e.distance}
                 for e in result],
        trace=tracer,
    )


def _row(quantity: str, span_value, independent_value) -> Dict[str, Any]:
    return {
        "quantity": quantity,
        "span": int(span_value),
        "independent": int(independent_value),
        "match": int(span_value) == int(independent_value),
    }


def _query_summary(query) -> Dict[str, Any]:
    return {
        "location": [query.location.x, query.location.y],
        "interval": [query.interval.lower, query.interval.upper],
        "keywords": sorted(query.keywords),
        "k": query.k,
        "match_mode": query.match_mode.value,
    }


def _plan(index, query, mode) -> Dict[str, Any]:
    inner = index if hasattr(index, "num_bands") else getattr(
        index, "index", index)
    return {
        "pruning": {"region": mode.region, "direction": mode.direction},
        "index": {
            "num_bands": getattr(inner, "num_bands", None),
            "num_wedges": getattr(inner, "num_wedges", None),
            "disk_based": bool(getattr(inner, "disk_based", False)),
        },
        "subqueries": [
            {"quadrant": quadrant,
             "interval": [piece.lower, piece.upper]}
            for quadrant, piece in query.basic_subqueries()
        ],
    }
