"""Context-local span trees: the substrate of per-query tracing.

A :class:`Span` is one named stage of a request with a wall-clock
duration, free-form numeric/string attributes, and children.  A
:class:`Tracer` collects the spans of one traced operation (usually one
query) into a tree.  Activation is *context-local* via
:mod:`contextvars`: instrumented code anywhere below the activation —
including code running on worker threads, when the callable was wrapped
with :func:`traced` — asks :func:`current_tracer` and attaches spans
under the caller's current span.

The module is dependency-free (stdlib only) and deliberately knows
nothing about the rest of the library; every layer from
:mod:`repro.storage` up to :mod:`repro.cluster` can import it without
cycles.

Cost model: when no tracer is active, an instrumented call site pays one
``ContextVar.get`` (tens of nanoseconds) and allocates nothing — the
overhead gate in ``benchmarks/test_service_throughput.py`` holds the
serving layer to <= 2% QPS loss with tracing compiled in but disabled.
When a tracer *is* active, spans cost one small object each; tracing is
per-request opt-in, never ambient.
"""

from __future__ import annotations

import contextvars
import json
import threading
import time
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
)

_TRACER: "contextvars.ContextVar[Optional[Tracer]]" = contextvars.ContextVar(
    "repro_tracer", default=None)
_SPAN: "contextvars.ContextVar[Optional[Span]]" = contextvars.ContextVar(
    "repro_span", default=None)


def current_tracer() -> Optional["Tracer"]:
    """The tracer active in this context, or ``None`` (tracing disabled).

    This is THE hot-path check: instrumented code calls it once per
    operation and takes the untraced fast path on ``None``.
    """
    return _TRACER.get()


def current_span() -> Optional["Span"]:
    """The innermost open span in this context, or ``None``."""
    return _SPAN.get()


class Span:
    """One named, timed stage of a traced operation.

    ``attrs`` hold whatever the instrumentation recorded (counters,
    decisions, identifiers); ``children`` are sub-stages.  Spans are
    created through a :class:`Tracer`, never directly.
    """

    __slots__ = ("name", "attrs", "children", "started", "ended")

    def __init__(self, name: str,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.started = time.perf_counter()
        self.ended = self.started

    # -- recording -----------------------------------------------------------

    def annotate(self, **attrs: Any) -> "Span":
        """Set (overwrite) attributes on this span; returns ``self``."""
        self.attrs.update(attrs)
        return self

    def add(self, key: str, amount: float = 1) -> None:
        """Accumulate a numeric attribute (missing counts start at 0)."""
        self.attrs[key] = self.attrs.get(key, 0) + amount

    # -- introspection -------------------------------------------------------

    @property
    def seconds(self) -> float:
        """Wall-clock duration (0.0 while the span is still open)."""
        return max(0.0, self.ended - self.started)

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (depth-first)."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree, depth-first order."""
        return [span for span in self.walk() if span.name == name]

    def total(self, key: str) -> float:
        """Sum of a numeric attribute over this whole subtree.

        Non-numeric and missing values count as zero — handy for rolling
        up counters like ``pages_read`` from leaf spans.
        """
        acc = 0.0
        for span in self.walk():
            value = span.attrs.get(key)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            acc += value
        return acc

    # -- export --------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict: name, duration, attrs, children (recursive)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attrs": dict(self.attrs),
            "children": [child.to_dict() for child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """Human-readable tree, one line per span."""
        pad = "  " * indent
        attrs = " ".join(f"{k}={_fmt(v)}" for k, v in self.attrs.items())
        line = f"{pad}{self.name} [{self.seconds * 1000.0:.3f} ms]"
        if attrs:
            line += f" {attrs}"
        lines = [line]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Span({self.name!r}, {self.seconds * 1000.0:.3f}ms, "
                f"{len(self.children)} children)")


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


class Tracer:
    """Collects the span tree(s) of one traced operation.

    Typical use::

        tracer = Tracer()
        with tracer.activate():
            engine.execute(query)        # instrumented code records spans
        print(tracer.render())
        json_blob = tracer.to_json()

    ``sink`` (see :class:`repro.trace.TraceSink`) receives the finished
    tracer when ``activate()`` exits, feeding span aggregates into a
    :class:`~repro.service.MetricsRegistry`.

    Thread-safe: spans may be opened concurrently from many worker
    threads (see :func:`traced`); attachment is serialized on one lock.
    """

    def __init__(self, sink: Optional["SupportsObserve"] = None) -> None:
        self.roots: List[Span] = []
        self.sink = sink
        self.spans_started = 0
        self._lock = threading.Lock()

    # -- span lifecycle ------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the context's current span.

        The span becomes the context-local current span for the duration
        of the ``with`` block, so nested instrumented calls attach below
        it.
        """
        span = Span(name, attrs)
        parent = _SPAN.get()
        with self._lock:
            (parent.children if parent is not None
             else self.roots).append(span)
            self.spans_started += 1
        token = _SPAN.set(span)
        try:
            yield span
        finally:
            span.ended = time.perf_counter()
            _SPAN.reset(token)

    def record(self, name: str, seconds: float = 0.0,
               parent: Optional[Span] = None, **attrs: Any) -> Span:
        """Attach an already-finished span (explicit duration).

        Used when the instrumented code measured a stage itself (e.g. the
        per-band timings inside :class:`~repro.core.QueryTrace`) and
        converts its measurements into spans after the fact.  ``parent``
        defaults to the context's current span, else a new root.
        """
        span = Span(name, attrs)
        span.ended = span.started + max(0.0, seconds)
        if parent is None:
            parent = _SPAN.get()
        with self._lock:
            (parent.children if parent is not None
             else self.roots).append(span)
            self.spans_started += 1
        return span

    # -- activation ----------------------------------------------------------

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Make this tracer current for the context of the ``with`` block.

        On exit the sink (if any) observes the finished tracer.  Nesting
        a second tracer inside an active one shadows the outer tracer for
        the inner block.
        """
        token = _TRACER.set(self)
        try:
            yield self
        finally:
            _TRACER.reset(token)
            if self.sink is not None:
                self.sink.observe(self)

    # -- introspection / export ---------------------------------------------

    @property
    def root(self) -> Optional[Span]:
        """The first root span (the usual single-operation case)."""
        return self.roots[0] if self.roots else None

    def walk(self) -> Iterator[Span]:
        """Every span recorded, depth-first across all roots."""
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Optional[Span]:
        """First span named ``name`` across all roots."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name: str) -> List[Span]:
        """Every span named ``name`` across all roots."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict with every root span tree."""
        return {"spans": [root.to_dict() for root in self.roots]}

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The whole trace as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        """Human-readable tree of every root span."""
        return "\n".join(root.render() for root in self.roots)


class SupportsObserve:
    """Structural type for tracer sinks (``observe(tracer)``)."""

    def observe(self, tracer: Tracer) -> None:  # pragma: no cover
        """Consume one finished tracer."""
        raise NotImplementedError


def traced(name: str, fn: Callable, *,
           record_queue_wait: bool = False, **attrs: Any) -> Callable:
    """Wrap ``fn`` to run under the *caller's* trace context elsewhere.

    Thread pools run submitted callables in a fresh context, which would
    orphan their spans.  ``traced`` captures the submitting context (the
    active tracer and current span) and returns a wrapper that, invoked
    on any thread, opens a span named ``name`` under that captured parent
    and runs ``fn`` inside it.  With no active tracer it returns ``fn``
    unchanged — zero overhead on the untraced path.

    ``record_queue_wait=True`` annotates the span with
    ``queue_wait_seconds``: the gap between wrapping (enqueue) and
    execution start — the time the work sat in the pool's queue.
    """
    tracer = _TRACER.get()
    if tracer is None:
        return fn
    ctx = contextvars.copy_context()
    enqueued = time.perf_counter()

    def wrapper(*args: Any, **kwargs: Any) -> Any:
        def call() -> Any:
            with tracer.span(name, **attrs) as span:
                if record_queue_wait:
                    span.annotate(
                        queue_wait_seconds=span.started - enqueued)
                return fn(*args, **kwargs)
        return ctx.run(call)

    return wrapper
