"""Plain-text rendering of benchmark series in the paper's shape.

Each experiment produces a *series table*: one row per x-value (k, direction
width, keyword count, ...) and one column per method — the same rows/series
the paper plots.  Results are also appended to ``results/`` files so
EXPERIMENTS.md can quote measured numbers.
"""

from __future__ import annotations

import datetime
import json
import os
from typing import Dict, List, Optional, Sequence


def format_series_table(title: str, x_label: str,
                        x_values: Sequence, columns: Dict[str, List[float]],
                        unit: str = "ms") -> str:
    """Render one experiment's series as an aligned text table."""
    names = list(columns)
    for name in names:
        if len(columns[name]) != len(x_values):
            raise ValueError(
                f"column {name!r} has {len(columns[name])} values for "
                f"{len(x_values)} x-values")
    width = max(12, max((len(n) for n in names), default=12) + 2)
    lines = [title, "=" * len(title)]
    header = f"{x_label:<16}" + "".join(f"{n:>{width}}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(x_values):
        cells = "".join(f"{columns[n][i]:>{width}.3f}" for n in names)
        lines.append(f"{str(x):<16}" + cells)
    lines.append(f"(values in {unit})")
    return "\n".join(lines)


def write_result(name: str, content: str,
                 results_dir: Optional[str] = None) -> str:
    """Write one experiment's rendered output under ``results/``.

    Returns the path written.  The directory defaults to ``results`` next
    to the current working directory (the repo root when run via pytest).
    """
    directory = results_dir or os.path.join(os.getcwd(), "results")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content.rstrip() + "\n")
    return path


def write_json_result(name: str, payload: Dict[str, object],
                      results_dir: Optional[str] = None) -> str:
    """Write one experiment's data as ``results/<name>.json``.

    The machine-readable twin of :func:`write_result`: the text tables are
    for eyeballs, these files are for tooling (CI trend checks, plotting).
    ``payload`` must be JSON-serializable; it is wrapped in an envelope
    with the benchmark name and a generation timestamp.  Returns the path
    written.
    """
    directory = results_dir or os.path.join(os.getcwd(), "results")
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.json")
    envelope = {
        "benchmark": name,
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "data": payload,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(envelope, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def ascii_chart(title: str, x_labels: Sequence,
                columns: Dict[str, List[float]], height: int = 12,
                log_scale: bool = False) -> str:
    """Render series as a rough ASCII line chart (one glyph per series).

    The paper's comparison figures are log-scale plots; ``log_scale=True``
    reproduces that reading.  Intended for the ``results/`` files — a shape
    you can eyeball without plotting libraries.
    """
    import math as _math

    if height < 2:
        raise ValueError(f"chart height must be at least 2, got {height}")
    names = list(columns)
    if not names or not x_labels:
        raise ValueError("ascii_chart needs at least one series and x value")
    for name in names:
        if len(columns[name]) != len(x_labels):
            raise ValueError(
                f"series {name!r} length != number of x labels")
    glyphs = "*o+x#@%&"

    def transform(v: float) -> float:
        if log_scale:
            return _math.log10(max(v, 1e-12))
        return v

    values = [transform(v) for name in names for v in columns[name]]
    lo, hi = min(values), max(values)
    span = hi - lo or 1.0
    # grid[row][col]; row 0 is the top.
    width = len(x_labels)
    grid = [[" "] * width for _ in range(height)]
    for series_idx, name in enumerate(names):
        glyph = glyphs[series_idx % len(glyphs)]
        for col, value in enumerate(columns[name]):
            level = (transform(value) - lo) / span
            row = height - 1 - int(round(level * (height - 1)))
            cell = grid[row][col]
            grid[row][col] = "=" if cell not in (" ", glyph) else glyph

    def fmt_axis(v: float) -> str:
        raw = 10 ** v if log_scale else v
        return f"{raw:10.3g}"

    lines = [title]
    for row_idx, row in enumerate(grid):
        level = hi - span * row_idx / (height - 1)
        axis = fmt_axis(level)
        lines.append(f"{axis} |" + "  ".join(row))
    lines.append(" " * 10 + " +" + "-" * (3 * width - 2))
    label_line = " " * 12 + "".join(f"{str(x):<3}"[:3] for x in x_labels)
    lines.append(label_line)
    legend = "  ".join(f"{glyphs[i % len(glyphs)]}={name}"
                       for i, name in enumerate(names))
    lines.append(" " * 12 + legend + ("  (log scale)" if log_scale else ""))
    return "\n".join(lines)


def speedup(baseline_value: float, method_value: float) -> float:
    """How many times faster ``method`` is than ``baseline``."""
    if method_value <= 0.0:
        return float("inf")
    return baseline_value / method_value
