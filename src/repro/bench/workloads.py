"""Query-workload generation matching the paper's experimental setup.

The paper generates five query sets with 1 to 5 keywords (1000 queries
each); "5000 queries" experiments use their union.  Keywords are drawn from
a randomly chosen POI's description, so every query's conjunction is
satisfiable somewhere — matching how the paper's keyword sets are sampled
from the datasets' own vocabulary — and locations are uniform over the
dataset MBR.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core import DirectionalQuery
from ..datasets import POICollection
from ..geometry import TWO_PI, DirectionInterval


def generate_queries(collection: POICollection, count: int,
                     num_keywords: int, direction_width: float,
                     k: int = 10, seed: int = 0,
                     alpha: Optional[float] = None,
                     ) -> List[DirectionalQuery]:
    """``count`` queries with the given keyword count and direction width.

    ``alpha`` fixes the interval's lower bound (the paper uses
    ``alpha = 0`` for the k/keyword sweeps); ``None`` randomises it per
    query, as in the direction sweeps.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if num_keywords <= 0:
        raise ValueError(f"num_keywords must be positive: {num_keywords}")
    if not 0.0 <= direction_width <= TWO_PI:
        raise ValueError(
            f"direction width {direction_width} outside [0, 2*pi]")
    rng = random.Random(seed)
    mbr = collection.mbr
    queries: List[DirectionalQuery] = []
    while len(queries) < count:
        x = rng.uniform(mbr.min_x, mbr.max_x)
        y = rng.uniform(mbr.min_y, mbr.max_y)
        poi = collection[rng.randrange(len(collection))]
        available = sorted(poi.keywords)
        if len(available) < num_keywords:
            continue  # resample a keyword-richer POI
        keywords = rng.sample(available, num_keywords)
        lower = alpha if alpha is not None else rng.uniform(0.0, TWO_PI)
        interval = DirectionInterval(lower, lower + direction_width)
        queries.append(DirectionalQuery.make(
            x, y, interval.lower, interval.upper, keywords, k))
    return queries


def repeated_stream(queries: Sequence[DirectionalQuery], repeats: int,
                    seed: Optional[int] = 0) -> List[DirectionalQuery]:
    """A cache-warm serving stream: ``queries`` replayed ``repeats`` times.

    Serving workloads are repetitive — popular places get asked about over
    and over — which is exactly what a result cache exploits.  Each repeat
    is independently shuffled (deterministically from ``seed``) so repeats
    don't arrive in lockstep order; ``seed=None`` keeps the plain
    concatenated order.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    stream: List[DirectionalQuery] = []
    rng = random.Random(seed) if seed is not None else None
    for _ in range(repeats):
        block = list(queries)
        if rng is not None:
            rng.shuffle(block)
        stream.extend(block)
    return stream


def paper_query_mix(collection: POICollection, per_set: int,
                    direction_width: float, k: int = 10, seed: int = 0,
                    alpha: Optional[float] = None,
                    keyword_counts: Sequence[int] = (1, 2, 3, 4, 5),
                    ) -> List[DirectionalQuery]:
    """The paper's union of keyword-count query sets ("5000 queries")."""
    queries: List[DirectionalQuery] = []
    for offset, num_keywords in enumerate(keyword_counts):
        queries.extend(generate_queries(
            collection, per_set, num_keywords, direction_width, k,
            seed=seed + 1000 * offset, alpha=alpha))
    return queries
