"""Benchmark harness: workload builders, timed runners, report rendering."""

from .reporting import (
    ascii_chart,
    format_series_table,
    speedup,
    write_json_result,
    write_result,
)
from .runner import (
    RunMeasurement,
    baseline_search_fn,
    brute_force_fn,
    check_agreement,
    desks_search_fn,
    run_workload,
)
from .workloads import generate_queries, paper_query_mix, repeated_stream

__all__ = [
    "RunMeasurement",
    "ascii_chart",
    "baseline_search_fn",
    "brute_force_fn",
    "check_agreement",
    "desks_search_fn",
    "format_series_table",
    "generate_queries",
    "paper_query_mix",
    "repeated_stream",
    "run_workload",
    "speedup",
    "write_json_result",
    "write_result",
]
