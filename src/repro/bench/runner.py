"""Timed execution of query workloads over any of the library's methods."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core import DirectionalQuery, QueryResult
from ..storage import SearchStats

#: A search callable: (query, stats) -> QueryResult.
SearchFn = Callable[[DirectionalQuery, Optional[SearchStats]], QueryResult]


@dataclass(frozen=True)
class RunMeasurement:
    """Aggregate outcome of running one method over one workload."""

    method: str
    num_queries: int
    total_seconds: float
    stats: SearchStats
    total_results: int

    @property
    def avg_ms(self) -> float:
        """Mean elapsed milliseconds per query — the paper's y-axis."""
        return 1000.0 * self.total_seconds / max(self.num_queries, 1)

    @property
    def avg_pois_examined(self) -> float:
        """Mean POIs touched per query — a hardware-independent proxy."""
        return self.stats.pois_examined / max(self.num_queries, 1)

    @property
    def avg_io(self) -> float:
        """Mean logical page reads per query (disk-backed methods only)."""
        return self.stats.io.logical_reads / max(self.num_queries, 1)


def run_workload(method: str, search_fn: SearchFn,
                 queries: Sequence[DirectionalQuery],
                 warmup: int = 2) -> RunMeasurement:
    """Run ``queries`` through ``search_fn`` and aggregate time and stats.

    A few warm-up queries are executed first (untimed) so interpreter and
    cache warm-up does not pollute the first data point, mirroring the
    paper's averaged measurements.
    """
    for query in queries[:warmup]:
        search_fn(query, None)
    stats = SearchStats()
    total_results = 0
    started = time.perf_counter()
    for query in queries:
        result = search_fn(query, stats)
        total_results += len(result)
    elapsed = time.perf_counter() - started
    return RunMeasurement(method, len(queries), elapsed, stats,
                          total_results)


def desks_search_fn(searcher, mode) -> SearchFn:
    """Adapter for :class:`~repro.core.DesksSearcher` at a pruning mode."""
    def fn(query, stats):
        return searcher.search(query, mode, stats)
    return fn


def baseline_search_fn(index) -> SearchFn:
    """Adapter for any :class:`~repro.baselines.BaselineIndex`."""
    def fn(query, stats):
        return index.search(query, stats)
    return fn


def brute_force_fn(collection) -> SearchFn:
    """Adapter for the linear-scan oracle."""
    from ..core import brute_force_search

    def fn(query, stats):
        return brute_force_search(collection, query, stats)
    return fn


def check_agreement(measure_a: List[float], measure_b: List[float],
                    tolerance: float = 1e-9) -> bool:
    """Utility for benches that cross-check methods' result distances."""
    if len(measure_a) != len(measure_b):
        return False
    return all(abs(a - b) <= tolerance
               for a, b in zip(measure_a, measure_b))
