"""The project rule catalog: the invariants the paper's correctness needs.

Each rule is a :class:`~repro.analysis.engine.RuleVisitor` with a stable
``DALxxx`` code (Direction-Aware Lint).  The catalog exists because three
whole *classes* of bugs in this codebase are invisible to generic linters:

* wraparound-unsafe angle arithmetic (the paper's Eqs. 1-6 and Lemmas 1-4
  only hold when every direction is normalised the same way — PR 1's
  apex direction-pruning bug was exactly a raw-angle comparison);
* durability-protocol violations (WAL-append-before-apply, checksummed
  frames) that only bite after a crash;
* I/O accounting leaks (pages read behind the buffer pool's back make
  ``IOStats`` — and every benchmark built on it — silently wrong).

Every rule documents its rationale; ``docs/ANALYSIS.md`` renders the
catalog and a meta-test asserts the two never drift.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Type, Union

from .contract import ContractRule
from .engine import ProgramRule, RuleVisitor
from .exceptions import ExceptionFlowRule
from .shared import SharedStateRule

#: Two-pi in its spellings: ``TWO_PI``/``TAU`` names, ``math.tau``, a
#: ``2 * math.pi`` product, or a literal within 1e-6 of 6.2831853.
_TWO_PI_NAMES = {"TWO_PI", "TAU"}
_TWO_PI_VALUE = 6.283185307179586


def _is_two_pi(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id in _TWO_PI_NAMES:
        return True
    if isinstance(node, ast.Attribute) and node.attr == "tau":
        return True
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return abs(node.value - _TWO_PI_VALUE) < 1e-6
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        sides = (node.left, node.right)
        has_two = any(isinstance(s, ast.Constant) and s.value in (2, 2.0)
                      for s in sides)
        has_pi = any(isinstance(s, ast.Attribute) and s.attr == "pi"
                     for s in sides)
        return has_two and has_pi
    return False


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a name/attribute/call chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return None


class AngleArithmeticRule(RuleVisitor):
    """DAL001: raw angle arithmetic outside :mod:`repro.geometry`."""

    code = "DAL001"
    summary = ("raw atan2 / modulo-2*pi arithmetic outside repro.geometry")
    rationale = (
        "Eqs. 1-6 and Lemmas 1-4 assume every direction is normalised into "
        "[0, 2*pi) by one implementation; ad-hoc atan2/% arithmetic "
        "reintroduces the wraparound bugs fixed in PR 1 (apex pruning). "
        "Use repro.geometry (angle_of, signed_angle_of, normalize_angle, "
        "DirectionInterval) instead.")

    def visit_Call(self, node: ast.Call) -> None:
        if not self.ctx.in_package("geometry"):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "atan2":
                self.emit(node, "raw math.atan2 outside repro.geometry; "
                                "use angle_of / signed_angle_of")
            elif isinstance(func, ast.Name) and func.id == "atan2":
                self.emit(node, "raw atan2 outside repro.geometry; "
                                "use angle_of / signed_angle_of")
            elif (isinstance(func, ast.Attribute) and func.attr == "fmod"
                  and node.args and len(node.args) == 2
                  and _is_two_pi(node.args[1])):
                self.emit(node, "fmod-by-2*pi outside repro.geometry; "
                                "use normalize_angle")
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if (not self.ctx.in_package("geometry")
                and isinstance(node.op, ast.Mod)
                and _is_two_pi(node.right)):
            self.emit(node, "modulo-2*pi arithmetic outside repro.geometry; "
                            "use normalize_angle")
        self.generic_visit(node)


class FloatEqualityRule(RuleVisitor):
    """DAL002: float ``==``/``!=`` on angles, distances, or locations."""

    code = "DAL002"
    summary = "float equality on angles, distances, or point locations"
    rationale = (
        "Angles come from atan2 and distances from hypot; two "
        "mathematically equal values routinely differ by an ulp (the "
        "TAU_SLACK story in core/mindist.py).  Exact == on them encodes a "
        "coincidence, not a predicate.  Compare against ANGLE_EPS-style "
        "tolerances, use Point.coincides(), or restate the test so exact "
        "zero is the honest boundary (e.g. `qd <= 0.0` for a hypot).")

    #: Identifier fragments that mark a value as an angle/distance/point.
    VOCAB = {
        "theta", "alpha", "beta", "tau", "angle", "angles", "bearing",
        "dist", "distance", "radius", "radii", "qd", "location",
    }

    @classmethod
    def _is_measured(cls, node: ast.AST) -> bool:
        name = _terminal_name(node)
        if name is None:
            return False
        return any(part in cls.VOCAB for part in name.lower().split("_"))

    @staticmethod
    def _is_float_literal(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and \
                isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return (isinstance(node, ast.Constant)
                and isinstance(node.value, float) and node.value != 0.0)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            pair = (left, right)
            if any(self._is_measured(o) for o in pair):
                self.emit(node, "exact ==/!= on an angle/distance/location "
                                "value; use a tolerance or "
                                "Point.coincides()")
                break
            if any(self._is_float_literal(o) for o in pair):
                self.emit(node, "exact ==/!= against a float literal; "
                                "compare with a tolerance")
                break
        self.generic_visit(node)


class BareAcquireRule(RuleVisitor):
    """DAL003: ``lock.acquire()`` without ``with`` or try/finally."""

    code = "DAL003"
    summary = "bare lock.acquire() not paired with with/try-finally release"
    rationale = (
        "A raised exception between acquire() and release() wedges every "
        "other thread forever — in this codebase that is the buffer pool, "
        "the result cache, or the mutable index's update lock.  Use `with "
        "lock:` (all six concurrent modules expose context-manager locks) "
        "or an immediate try/finally whose finally releases the same "
        "lock.")

    def _scan_body(self, body: List[ast.stmt]) -> None:
        for i, stmt in enumerate(body):
            if isinstance(stmt, ast.With):
                continue  # `with lock:` is the blessed form
            receiver = self._acquire_receiver(stmt)
            if receiver is None:
                continue
            follower = body[i + 1] if i + 1 < len(body) else None
            if isinstance(follower, ast.Try) and \
                    self._releases(follower.finalbody, receiver):
                continue
            self.emit(stmt, f"bare {receiver}.acquire() — use `with "
                            f"{receiver}:` or try/finally release")

    @staticmethod
    def _acquire_receiver(stmt: ast.stmt) -> Optional[str]:
        if not isinstance(stmt, (ast.Expr, ast.Assign, ast.AnnAssign,
                                 ast.AugAssign)):
            return None
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "acquire"):
                return ast.unparse(node.func.value)
        return None

    @staticmethod
    def _releases(finalbody: List[ast.stmt], receiver: str) -> bool:
        for stmt in finalbody:
            for node in ast.walk(stmt):
                if (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "release"
                        and ast.unparse(node.func.value) == receiver):
                    return True
        return False

    def generic_visit(self, node: ast.AST) -> None:
        for field_value in ast.iter_fields(node):
            value = field_value[1]
            if isinstance(value, list) and value and \
                    isinstance(value[0], ast.stmt):
                self._scan_body(value)
        super().generic_visit(node)


class StrayFileWriteRule(RuleVisitor):
    """DAL004: durable file mutation outside the storage/durability layers."""

    code = "DAL004"
    summary = ("binary file writes / fsync / rename outside repro.storage "
               "and repro.durability")
    rationale = (
        "The durability contract is WAL-append-before-apply with "
        "checksummed page frames and a crash-safe two-rename snapshot "
        "swap (PR 3).  A binary write, fsync, or rename issued anywhere "
        "else mutates durable state outside that protocol, so a crash "
        "there can lose or tear data invisibly.  Allowed homes: "
        "repro/storage, repro/durability, and repro/core/persistence.py "
        "(the audited snapshot-swap layer).")

    #: Modules allowed to touch durable files directly.
    ALLOWED = ("storage", "durability", "core/persistence.py")

    _OS_CALLS = {"fsync", "rename", "replace"}

    def visit_Call(self, node: ast.Call) -> None:
        if not self.ctx.in_package(*self.ALLOWED):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and func.attr in self._OS_CALLS
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "os"):
                self.emit(node, f"os.{func.attr} outside the storage/"
                                "durability layers")
            elif isinstance(func, ast.Name) and func.id == "open":
                mode = self._mode_arg(node)
                if mode is not None and "b" in mode and \
                        any(c in mode for c in "wa+x"):
                    self.emit(node, f"binary file write (mode {mode!r}) "
                                    "outside the storage/durability layers")
        self.generic_visit(node)

    @staticmethod
    def _mode_arg(node: ast.Call) -> Optional[str]:
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant) \
                and isinstance(node.args[1].value, str):
            return node.args[1].value
        for keyword in node.keywords:
            if keyword.arg == "mode" and \
                    isinstance(keyword.value, ast.Constant) and \
                    isinstance(keyword.value.value, str):
                return keyword.value.value
        return None


class BufferBypassRule(RuleVisitor):
    """DAL005: page I/O issued on a raw store instead of the buffer pool."""

    code = "DAL005"
    summary = "read_page/write_page on a raw page store outside repro.storage"
    rationale = (
        "Every page access must flow through the BufferPool so IOStats "
        "stays truthful (the paper's I/O comparisons — and PR 4's "
        "explain() reconciliation — are built on it) and so checksum "
        "verification runs on the read path.  A read on `.store`/`.inner` "
        "bypasses both.  The only legitimate bypass is deliberate damage "
        "injection in the chaos harness, which suppresses this rule "
        "explicitly.")

    #: Receiver names that denote a raw store rather than a pool.
    RAW_RECEIVERS = {"store", "_store", "inner", "page_store", "pages"}

    def visit_Call(self, node: ast.Call) -> None:
        if not self.ctx.in_package("storage"):
            func = node.func
            if isinstance(func, ast.Attribute) and \
                    func.attr in ("read_page", "write_page"):
                receiver = _terminal_name(func.value)
                if receiver in self.RAW_RECEIVERS:
                    self.emit(node, f"{func.attr} on raw store "
                                    f"`{ast.unparse(func.value)}` bypasses "
                                    "the buffer pool (IOStats + checksums)")
        self.generic_visit(node)


class NondeterminismRule(RuleVisitor):
    """DAL006: wall-clock / unseeded randomness in search or recovery."""

    code = "DAL006"
    summary = ("time.time or unseeded random inside search/recovery "
               "modules")
    rationale = (
        "Search answers and crash recovery must be replayable: the "
        "differential fuzzer, the chaos harness, and the explain() "
        "reconciliation all compare two runs byte-for-byte.  Wall-clock "
        "reads and the process-global random module make those runs "
        "unrepeatable.  Use time.perf_counter/monotonic for durations "
        "and a seeded random.Random instance for randomness.")

    #: Packages whose behaviour must be deterministic.
    SCOPED = ("core", "rtree", "text", "geometry", "durability", "kernel")

    _GLOBAL_RNG_OK = {"Random", "SystemRandom", "seed", "getstate",
                      "setstate"}

    def _scoped(self) -> bool:
        return self.ctx.in_package(*self.SCOPED)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (self._scoped() and node.attr == "time"
                and isinstance(node.value, ast.Name)
                and node.value.id == "time"):
            self.emit(node, "time.time in a deterministic path; use "
                            "perf_counter/monotonic for durations")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._scoped():
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr not in self._GLOBAL_RNG_OK):
                self.emit(node, f"process-global random.{func.attr} in a "
                                "deterministic path; use a seeded "
                                "random.Random instance")
            elif (isinstance(func, ast.Attribute)
                    and func.attr == "Random"
                    and not node.args and not node.keywords):
                self.emit(node, "random.Random() without a seed in a "
                                "deterministic path")
        self.generic_visit(node)


class TransportRule(RuleVisitor):
    """DAL007: raw socket/asyncio transport outside :mod:`repro.net`."""

    code = "DAL007"
    summary = "socket/asyncio imported outside repro.net"
    rationale = (
        "repro.net is the network boundary: framing, CRCs, deadline "
        "budgets, admission control, and reconnect live there and "
        "nowhere else.  A socket opened (or an event loop spun up) in "
        "another layer bypasses the wire format's corruption checks and "
        "the overload shedding, and makes that layer untestable without "
        "a network.  Depend on RemoteShardClient / ShardTransport "
        "instead; if a new transport primitive is genuinely needed, it "
        "belongs in repro/net.")

    #: Modules whose import marks code as doing raw network transport.
    TRANSPORT_MODULES = {"socket", "asyncio", "socketserver", "selectors",
                         "ssl"}

    def _check(self, node: ast.AST, module: Optional[str]) -> None:
        root = (module or "").split(".")[0]
        if root in self.TRANSPORT_MODULES:
            self.emit(node, f"`{root}` imported outside repro.net; use "
                            "repro.net's clients/transports instead")

    def visit_Import(self, node: ast.Import) -> None:
        if not self.ctx.in_package("net"):
            for alias in node.names:
                self._check(node, alias.name)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self.ctx.in_package("net") and node.level == 0:
            self._check(node, node.module)
        self.generic_visit(node)


class LanguagePurityRule(RuleVisitor):
    """DAL008: :mod:`repro.lang` importing beyond its dependency set."""

    code = "DAL008"
    summary = ("repro.lang importing repro packages other than "
               "geometry/text/core/trace")
    rationale = (
        "The query language is a pure layer: statements parse to plans "
        "and plans bind to *caller-supplied* backends, so repro.lang may "
        "depend only on the vocabulary it describes — repro.geometry "
        "(angles), repro.text (keyword canonicalisation), repro.core "
        "(queries, modes, search), and repro.trace (EXPLAIN).  An import "
        "of service/cluster/net from repro.lang would invert the "
        "dependency arrow (those layers import the language to speak "
        "DQL), drag sockets and thread pools into every parser test, and "
        "re-couple the executor seam this package exists to keep open.")

    #: ``repro.*`` sub-packages the language layer may import (itself
    #: included, for intra-package relative imports).
    ALLOWED = {"geometry", "text", "core", "trace", "lang"}

    def _resolved_root(self, node: ast.ImportFrom) -> List[str]:
        """The absolute ``repro/...`` parts a relative import targets."""
        package = self.ctx.module_path.split("/")[:-1]
        if node.level > 1:
            package = package[:len(package) - (node.level - 1)]
        return package + ((node.module or "").split(".")
                          if node.module else [])

    def _check(self, node: ast.AST, package: str) -> None:
        if package not in self.ALLOWED:
            self.emit(node, f"repro.lang imports repro.{package}; the "
                            "language layer may depend only on "
                            "geometry/text/core/trace — pass backends in "
                            "from the caller instead")

    def visit_Import(self, node: ast.Import) -> None:
        if self.ctx.in_package("lang"):
            for alias in node.names:
                parts = alias.name.split(".")
                if parts[0] == "repro" and len(parts) > 1:
                    self._check(node, parts[1])
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if self.ctx.in_package("lang"):
            if node.level == 0:
                parts = (node.module or "").split(".")
                if parts[0] == "repro":
                    if len(parts) > 1:
                        self._check(node, parts[1])
                    else:  # from repro import X -- names are packages
                        for alias in node.names:
                            self._check(node, alias.name)
            else:
                parts = self._resolved_root(node)
                if parts[:1] == ["repro"]:
                    if len(parts) > 1:
                        self._check(node, parts[1])
                    else:  # from .. import X -- names are packages
                        for alias in node.names:
                            self._check(node, alias.name)
        self.generic_visit(node)


class ChaosContainmentRule(RuleVisitor):
    """DAL009: :mod:`repro.net.chaos` imported from production code."""

    code = "DAL009"
    summary = "repro.net.chaos imported outside the chaos module itself"
    rationale = (
        "repro.net.chaos is the fault injector: a TCP proxy that "
        "corrupts, delays, resets, and blackholes traffic on purpose.  "
        "It exists so tests and benchmarks can prove the client "
        "resilience layer correct — and it must stay there.  An import "
        "from any production module (server, client, frontend, router, "
        "CLI) would put deliberate fault injection one config flag away "
        "from live traffic; DAL007's socket allowance for repro.net "
        "makes the proxy possible, this rule keeps it contained.  "
        "Drive it from tests/ or benchmarks/ only.")

    #: The module whose import is confined.
    CHAOS = ("repro", "net", "chaos")

    def _exempt(self) -> bool:
        return self.ctx.module_path == "repro/net/chaos.py"

    def _resolved(self, node: ast.ImportFrom) -> List[str]:
        """The absolute ``repro/...`` parts a relative import targets."""
        package = self.ctx.module_path.split("/")[:-1]
        if node.level > 1:
            package = package[:len(package) - (node.level - 1)]
        return package + ((node.module or "").split(".")
                          if node.module else [])

    def _flag(self, node: ast.AST) -> None:
        self.emit(node, "repro.net.chaos (the fault-injecting proxy) "
                        "imported from production code; chaos tooling "
                        "may only be driven from tests and benchmarks")

    def visit_Import(self, node: ast.Import) -> None:
        if not self._exempt():
            for alias in node.names:
                if tuple(alias.name.split(".")[:3]) == self.CHAOS:
                    self._flag(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if not self._exempt():
            if node.level == 0:
                parts = (node.module or "").split(".")
            else:
                parts = self._resolved(node)
            if tuple(parts[:3]) == self.CHAOS:
                self._flag(node)
            elif tuple(parts) == ("repro", "net"):
                for alias in node.names:
                    if alias.name == "chaos":
                        self._flag(node)
        self.generic_visit(node)


#: Every per-file rule, in code order — the engine default.  DAL010
#: (the architecture contract) subsumes the v1 layering rules DAL007/
#: 008/009: their checks live on as contract entries whose violations
#: keep the legacy codes via aliases.  The legacy rule classes above
#: stay importable (fixtures and downstream tooling may run them
#: directly) but are no longer part of the default set.
ALL_RULES: Sequence[Type[RuleVisitor]] = (
    AngleArithmeticRule,
    FloatEqualityRule,
    BareAcquireRule,
    StrayFileWriteRule,
    BufferBypassRule,
    NondeterminismRule,
    ContractRule,
    SharedStateRule,
)

#: Whole-program rules the default engine runs once per check().
PROGRAM_RULES: Sequence[Type[ProgramRule]] = (
    ExceptionFlowRule,
)

#: Legacy codes that are now aliases: findings reported under these
#: codes are produced by the contract rule (DAL010).
ALIAS_CODES: Dict[str, Type[RuleVisitor]] = {
    "DAL007": ContractRule,
    "DAL008": ContractRule,
    "DAL009": ContractRule,
}

#: code -> rule class (file rules, program rules, and alias codes), for
#: documentation, `--rules` validation, and the meta-test.
RULE_INDEX: Dict[str, Union[Type[RuleVisitor], Type[ProgramRule]]] = {}
for _rule in ALL_RULES:
    RULE_INDEX[_rule.code] = _rule
for _program_rule in PROGRAM_RULES:
    RULE_INDEX[_program_rule.code] = _program_rule
RULE_INDEX.update(ALIAS_CODES)


def rule_catalog() -> List[Dict[str, str]]:
    """The catalog as data: code, summary, rationale per rule.

    Covers the per-file rules and the program rules; alias codes are
    documented by the rule that produces them (DAL010).
    """
    rules: List[Union[Type[RuleVisitor], Type[ProgramRule]]] = []
    rules.extend(ALL_RULES)
    rules.extend(PROGRAM_RULES)
    return [
        {"code": rule.code, "summary": rule.summary,
         "rationale": rule.rationale}
        for rule in sorted(rules, key=lambda rule: rule.code)
    ]
