"""Shared-state write sanitizer: runtime tracker + static rule (DAL012).

The lock-order detector (:mod:`repro.analysis.locks`) proves the locks
that *are* taken nest consistently — it cannot see a write that takes no
lock at all.  This module closes that gap from both sides:

* **Runtime** — thread-shared objects register themselves at the end of
  ``__init__`` via :func:`register_shared`.  With tracking off that call
  is a no-op returning the object (zero per-write cost: no wrapper, no
  class swap).  With tracking on (``DESKS_WRITE_TRACKING=1`` or
  :func:`enable_write_tracking`, which implies lock tracking) the
  object's class is swapped to a generated subclass whose
  ``__setattr__`` reports every attribute mutation to the active
  :class:`WriteTracker`, which records a :class:`WriteViolation` whenever
  the writing thread holds *no* ``make_lock`` role.  ``__init__`` writes
  are exempt by construction: the swap happens after them.
* **Static** — :class:`SharedStateRule` (DAL012) flags ``self.attr``
  assignments outside ``__init__`` in any class that registers itself as
  thread-shared, unless the assignment sits lexically inside a ``with``
  on something lock-like.  The runtime facet catches the interleavings
  tests produce; the static facet catches the code paths they don't.
"""

from __future__ import annotations

import ast
import os
import threading
import traceback
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, TypeVar

from .engine import RuleVisitor
from .locks import enable_lock_tracking, get_lock_tracker

ENV_WRITE_FLAG = "DESKS_WRITE_TRACKING"

T = TypeVar("T")


@dataclass(frozen=True)
class WriteViolation:
    """Writes to one ``(role, attribute)`` with no lock role held."""

    role: str
    attr: str
    count: int
    threads: int
    #: Trimmed stack of the first unguarded write.
    stack: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for reports."""
        return {"role": self.role, "attr": self.attr, "count": self.count,
                "threads": self.threads, "stack": list(self.stack)}


@dataclass
class WriteReport:
    """The verdict over one tracked run."""

    violations: List[WriteViolation]
    writes: int

    @property
    def clean(self) -> bool:
        """True when every tracked write held at least one lock role."""
        return not self.violations

    def render(self) -> str:
        """Human-readable report; violations point at code via stacks."""
        lines = [f"tracked attribute writes: {self.writes}, "
                 f"unguarded: {len(self.violations)} distinct site(s)"]
        if self.clean:
            lines.append("no unguarded shared-state writes detected")
            return "\n".join(lines)
        for violation in self.violations:
            lines.append(
                f"UNGUARDED WRITE: {violation.role}.{violation.attr} "
                f"(x{violation.count}, {violation.threads} thread(s))")
            lines.extend(f"    {frame}" for frame in violation.stack)
        return "\n".join(lines)


class _ViolationRecord:
    __slots__ = ("count", "threads", "stack")

    def __init__(self, stack: Tuple[str, ...]) -> None:
        self.count = 0
        self.threads: Set[int] = set()
        self.stack = stack


class WriteTracker:
    """Collects attribute-write events from registered shared objects.

    Thread-safe; uses a raw ``threading.Lock`` for its own state (its
    bookkeeping must not appear in the lock-order graph it polices).
    """

    def __init__(self, stack_depth: int = 6) -> None:
        self.stack_depth = stack_depth
        self._mutex = threading.Lock()
        self._writes = 0
        self._bad: Dict[Tuple[str, str], _ViolationRecord] = {}

    def on_write(self, role: str, attr: str) -> None:
        """Record one attribute write on a shared object.

        A write is a violation when the current thread holds no
        ``make_lock`` role at all; which *specific* role guards which
        object stays the lock-order detector's business.
        """
        tracker = get_lock_tracker()
        held = tracker.held_roles() if tracker is not None else ()
        if held:
            with self._mutex:
                self._writes += 1
            return
        thread_id = threading.get_ident()
        key = (role, attr)
        with self._mutex:
            self._writes += 1
            record = self._bad.get(key)
            if record is None:
                frames = tuple(
                    f"{f.filename}:{f.lineno} in {f.name}: {f.line}"
                    for f in traceback.extract_stack(
                        limit=self.stack_depth + 3)[:-3])
                record = self._bad[key] = _ViolationRecord(frames)
            record.count += 1
            record.threads.add(thread_id)

    def report(self) -> WriteReport:
        """Everything observed so far, deterministically ordered."""
        with self._mutex:
            violations = [
                WriteViolation(role=role, attr=attr, count=record.count,
                               threads=len(record.threads),
                               stack=record.stack)
                for (role, attr), record in sorted(self._bad.items())]
            return WriteReport(violations, self._writes)


# -- global switch -------------------------------------------------------------

_write_tracker: Optional[WriteTracker] = None

#: Generated tracked subclasses, one per (class, role).
_tracked_classes: Dict[Tuple[type, str], type] = {}


def write_tracking_enabled() -> bool:
    """True when :func:`register_shared` currently instruments objects."""
    return _write_tracker is not None


def get_write_tracker() -> Optional[WriteTracker]:
    """The active tracker, or ``None`` when tracking is off."""
    return _write_tracker


def enable_write_tracking(
        tracker: Optional[WriteTracker] = None) -> WriteTracker:
    """Start tracking shared-object writes; returns the tracker.

    Implies lock tracking (the sanitizer's question is "was a
    ``make_lock`` role held?", which only tracked locks can answer).
    Affects objects registered *after* the call.
    """
    global _write_tracker
    if get_lock_tracker() is None:
        enable_lock_tracking()
    if tracker is not None:
        _write_tracker = tracker
    elif _write_tracker is None:
        _write_tracker = WriteTracker()
    return _write_tracker


def disable_write_tracking() -> None:
    """Stop instrumenting newly registered objects.

    Already-swapped objects keep their tracked class but their writes
    stop being recorded (the module-level tracker is gone).
    """
    global _write_tracker
    _write_tracker = None


def _tracked_class(cls: type, role: str) -> type:
    """The generated write-reporting subclass for ``(cls, role)``.

    ``__slots__ = ()`` keeps the subclass layout-compatible with both
    slotted and dict-based classes, so an instance's ``__class__`` can
    be swapped in place.
    """
    key = (cls, role)
    cached = _tracked_classes.get(key)
    if cached is not None:
        return cached

    def __setattr__(self: object, name: str, value: object) -> None:
        tracker = _write_tracker
        if tracker is not None:
            tracker.on_write(role, name)
        cls.__setattr__(self, name, value)

    sub = type(cls.__name__, (cls,), {
        "__slots__": (),
        "__setattr__": __setattr__,
        "_desks_write_role": role,
    })
    _tracked_classes[key] = sub
    return sub


def register_shared(obj: T, role: str) -> T:
    """Mark ``obj`` as thread-shared under ``role``; returns ``obj``.

    Call as the *last* statement of ``__init__``.  A no-op when write
    tracking is off — the common case costs one ``None`` check per
    object construction and nothing per attribute write.
    """
    if _write_tracker is None:
        return obj
    cls = type(obj)
    if getattr(cls, "_desks_write_role", None) is not None:
        return obj  # already instrumented (or a tracked subclass)
    setattr(obj, "__class__", _tracked_class(cls, role))
    return obj


# -- the static rule -----------------------------------------------------------


def _lockish(expr: ast.expr) -> bool:
    """True when a ``with`` context expression looks like a lock."""
    try:
        text = ast.unparse(expr).lower()
    except (ValueError, AttributeError):  # pragma: no cover - defensive
        return False
    return "lock" in text or "mutex" in text


def _registers_shared(init: ast.AST) -> bool:
    for node in ast.walk(init):
        if isinstance(node, ast.Call):
            func = node.func
            name = (func.id if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute)
                    else None)
            if name == "register_shared":
                return True
    return False


class SharedStateRule(RuleVisitor):
    """DAL012: unguarded ``self.attr`` writes in thread-shared classes.

    Applies to classes whose ``__init__`` calls :func:`register_shared`.
    Outside ``__init__``, every attribute assignment on ``self`` must
    sit lexically inside a ``with`` whose context expression mentions a
    lock; anything else is a write the runtime sanitizer would flag on
    the first unlucky interleaving — this rule flags it on every run.
    """

    code = "DAL012"
    summary = ("attribute assigned outside __init__ without a lock in a "
               "registered thread-shared class")
    rationale = (
        "Objects registered via register_shared (engine, result cache, "
        "metrics, buffer pool, replica sets) are mutated from many "
        "threads; the lock-order detector proves taken locks nest "
        "correctly but cannot see a write that takes no lock at all.  "
        "An unguarded `self.attr = ...` outside __init__ is exactly "
        "that: a data race the runtime write tracker only catches when "
        "a test produces the interleaving.  Guard the write with the "
        "object's `with self._lock:` (or do it in __init__, before the "
        "object is shared).")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        """Scan methods of classes that register as thread-shared."""
        init = next(
            (item for item in node.body
             if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
             and item.name == "__init__"), None)
        if init is not None and _registers_shared(init):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)) and \
                        item.name != "__init__":
                    self._scan(item.body, node.name, guarded=False)
        self.generic_visit(node)

    def _scan(self, stmts: List[ast.stmt], class_name: str,
              guarded: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                inner = guarded or any(_lockish(item.context_expr)
                                       for item in stmt.items)
                self._scan(stmt.body, class_name, inner)
                continue
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested definitions run in their own context
            if not guarded:
                for target in self._self_attr_targets(stmt):
                    self.emit(stmt, f"`self.{target}` assigned outside "
                                    "__init__ without holding a lock in "
                                    f"thread-shared class `{class_name}`; "
                                    "wrap the write in `with self._lock:` "
                                    "or move it into __init__")
            for _, value in ast.iter_fields(stmt):
                if isinstance(value, list) and value and \
                        isinstance(value[0], ast.stmt):
                    self._scan(value, class_name, guarded)

    @staticmethod
    def _self_attr_targets(stmt: ast.stmt) -> List[str]:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        out: List[str] = []
        for target in targets:
            nodes = (target.elts if isinstance(target, ast.Tuple)
                     else [target])
            for node in nodes:
                if isinstance(node, ast.Attribute) and \
                        isinstance(node.value, ast.Name) and \
                        node.value.id == "self":
                    out.append(node.attr)
        return out


if os.environ.get(ENV_WRITE_FLAG, "").strip() not in ("", "0", "false"):
    enable_write_tracking()


__all__ = [
    "ENV_WRITE_FLAG",
    "SharedStateRule",
    "WriteReport",
    "WriteTracker",
    "WriteViolation",
    "disable_write_tracking",
    "enable_write_tracking",
    "get_write_tracker",
    "register_shared",
    "write_tracking_enabled",
]
