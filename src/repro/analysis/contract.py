"""The declarative architecture contract and its enforcement rule (DAL010).

``ARCHITECTURE.toml`` (shipped inside this package) declares the layer
DAG — which units may import which, at module level or deferred inside a
function — plus two confinement tables carried over from the v1 rules:
external transport modules pinned to ``repro.net`` (old DAL007) and
project modules restricted to an allow-list of files (old DAL009,
``repro.net.chaos``).  :class:`ContractRule` reads the contract and
flags every import the contract does not permit; entries may carry an
``alias`` so a violation keeps its legacy code (DAL007/008/009) and its
original message verbatim in reports.

The contract also names the RPC *boundaries* — the entry points whose
broad ``except`` is the typed-error conversion itself — which the
exception-flow pass (DAL011, :mod:`repro.analysis.exceptions`) consumes.

Parsing uses :mod:`tomllib` where available (Python >= 3.11) and falls
back to a minimal single-line-value TOML subset parser otherwise, so the
linter works on every interpreter the project supports without adding a
dependency.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .engine import Finding, RuleVisitor
from .graph import ImportRef, iter_imports, unit_of

#: Default message templates when a contract entry does not override them.
GENERIC_EXTERNAL_MESSAGE = ("`{module}` is confined by ARCHITECTURE.toml "
                            "and may not be imported from this layer")
GENERIC_RESTRICTED_MESSAGE = ("`{module}` is restricted by ARCHITECTURE.toml "
                              "to an explicit allow-list of files")


@dataclass(frozen=True)
class Layer:
    """One architecture unit and the units it may import."""

    name: str
    deps: Tuple[str, ...]
    deferred: Tuple[str, ...] = ()
    alias: str = ""
    message: str = ""


@dataclass(frozen=True)
class ExternalRule:
    """Stdlib/third-party modules confined to specific units."""

    modules: Tuple[str, ...]
    allowed_in: Tuple[str, ...]
    alias: str = ""
    message: str = ""


@dataclass(frozen=True)
class RestrictedRule:
    """A project module importable only from an allow-list of files."""

    module: str
    allowed_in: Tuple[str, ...]
    alias: str = ""
    message: str = ""


@dataclass(frozen=True)
class Boundary:
    """An RPC entry point and the exception families allowed to escape it."""

    module: str
    function: str
    allowed: Tuple[str, ...]


def _str(value: object, key: str) -> str:
    if not isinstance(value, str):
        raise ValueError(f"contract: `{key}` must be a string")
    return value


def _strs(value: object, key: str) -> Tuple[str, ...]:
    if not isinstance(value, list) or \
            not all(isinstance(item, str) for item in value):
        raise ValueError(f"contract: `{key}` must be an array of strings")
    return tuple(value)


class Contract:
    """The parsed architecture contract: layers, confinements, boundaries."""

    def __init__(self, layers: Sequence[Layer],
                 externals: Sequence[ExternalRule] = (),
                 restricted: Sequence[RestrictedRule] = (),
                 boundaries: Sequence[Boundary] = (),
                 schema: int = 1) -> None:
        self.schema = schema
        self.layers: Dict[str, Layer] = {}
        for layer in layers:
            if layer.name in self.layers:
                raise ValueError(f"contract: duplicate layer `{layer.name}`")
            self.layers[layer.name] = layer
        self.externals: Tuple[ExternalRule, ...] = tuple(externals)
        self.restricted: Tuple[RestrictedRule, ...] = tuple(restricted)
        self.boundaries: Tuple[Boundary, ...] = tuple(boundaries)
        self._validate()

    def _validate(self) -> None:
        for layer in self.layers.values():
            for dep in layer.deps + layer.deferred:
                if dep not in self.layers:
                    raise ValueError(
                        f"contract: layer `{layer.name}` depends on "
                        f"undeclared layer `{dep}`")
        for ext in self.externals:
            for unit in ext.allowed_in:
                if unit not in self.layers:
                    raise ValueError(
                        f"contract: external allow-list names undeclared "
                        f"layer `{unit}`")

    def layer(self, name: str) -> Optional[Layer]:
        """The layer entry for ``name``, or ``None`` if undeclared."""
        return self.layers.get(name)

    def boundary(self, module_path: str,
                 function: str) -> Optional[Boundary]:
        """The boundary entry for a function, or ``None``."""
        for entry in self.boundaries:
            if entry.module == module_path and entry.function == function:
                return entry
        return None

    def is_boundary(self, module_path: str, function: str) -> bool:
        """True when ``function`` in ``module_path`` is an RPC boundary."""
        return self.boundary(module_path, function) is not None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_dict(cls, doc: Mapping[str, object]) -> "Contract":
        """Build a contract from a parsed TOML document."""
        schema = doc.get("schema", 1)
        if not isinstance(schema, int) or schema != 1:
            raise ValueError(f"contract: unsupported schema {schema!r}")

        def tables(key: str) -> List[Mapping[str, object]]:
            raw = doc.get(key, [])
            if not isinstance(raw, list):
                raise ValueError(f"contract: `{key}` must be an "
                                 "array of tables")
            out: List[Mapping[str, object]] = []
            for item in raw:
                if not isinstance(item, dict):
                    raise ValueError(f"contract: `{key}` entries must "
                                     "be tables")
                out.append(item)
            return out

        layers = [Layer(
            name=_str(t.get("name", ""), "layer.name"),
            deps=_strs(t.get("deps", []), "layer.deps"),
            deferred=_strs(t.get("deferred", []), "layer.deferred"),
            alias=_str(t.get("alias", ""), "layer.alias"),
            message=_str(t.get("message", ""), "layer.message"),
        ) for t in tables("layer")]
        externals = [ExternalRule(
            modules=_strs(t.get("modules", []), "external.modules"),
            allowed_in=_strs(t.get("allowed_in", []), "external.allowed_in"),
            alias=_str(t.get("alias", ""), "external.alias"),
            message=_str(t.get("message", ""), "external.message"),
        ) for t in tables("external")]
        restricted = [RestrictedRule(
            module=_str(t.get("module", ""), "restricted.module"),
            allowed_in=_strs(t.get("allowed_in", []),
                             "restricted.allowed_in"),
            alias=_str(t.get("alias", ""), "restricted.alias"),
            message=_str(t.get("message", ""), "restricted.message"),
        ) for t in tables("restricted")]
        boundaries = [Boundary(
            module=_str(t.get("module", ""), "boundary.module"),
            function=_str(t.get("function", ""), "boundary.function"),
            allowed=_strs(t.get("allowed", []), "boundary.allowed"),
        ) for t in tables("boundary")]
        return cls(layers, externals, restricted, boundaries, schema=schema)

    @classmethod
    def from_toml(cls, text: str) -> "Contract":
        """Parse TOML text (tomllib, or the bundled fallback subset)."""
        return cls.from_dict(parse_toml(text))

    @classmethod
    def load(cls, path: str) -> "Contract":
        """Load a contract from a TOML file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_toml(handle.read())


#: The checked-in contract shipped next to this module.
DEFAULT_CONTRACT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "ARCHITECTURE.toml")

_default: Optional[Contract] = None


def default_contract() -> Contract:
    """The packaged ``ARCHITECTURE.toml`` contract (parsed once)."""
    global _default
    if _default is None:
        _default = Contract.load(DEFAULT_CONTRACT_PATH)
    return _default


# -- TOML parsing --------------------------------------------------------------


def parse_toml(text: str) -> Dict[str, object]:
    """Parse TOML using :mod:`tomllib` when present, else the fallback."""
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - py < 3.11 only
        return _fallback_parse(text)
    result = tomllib.loads(text)
    assert isinstance(result, dict)
    return result


def _strip_comment(line: str) -> str:
    """Drop a ``#`` comment that is not inside a quoted string."""
    in_string = False
    for i, char in enumerate(line):
        if char == '"' and (i == 0 or line[i - 1] != "\\"):
            in_string = not in_string
        elif char == "#" and not in_string:
            return line[:i]
    return line


def _parse_scalar(token: str) -> object:
    token = token.strip()
    if token.startswith('"') and token.endswith('"') and len(token) >= 2:
        body = token[1:-1]
        return (body.replace('\\"', '"').replace("\\n", "\n")
                .replace("\\t", "\t").replace("\\\\", "\\"))
    if token in ("true", "false"):
        return token == "true"
    try:
        return int(token)
    except ValueError:
        raise ValueError(f"contract TOML: unsupported value {token!r}") \
            from None


def _split_items(body: str) -> List[str]:
    items: List[str] = []
    current: List[str] = []
    in_string = False
    for i, char in enumerate(body):
        if char == '"' and (i == 0 or body[i - 1] != "\\"):
            in_string = not in_string
            current.append(char)
        elif char == "," and not in_string:
            items.append("".join(current))
            current = []
        else:
            current.append(char)
    if "".join(current).strip():
        items.append("".join(current))
    return [item for item in items if item.strip()]


def _fallback_parse(text: str) -> Dict[str, object]:
    """A minimal TOML subset parser for the contract schema.

    Supports comments, ``[[array.of.tables]]`` headers, ``[table]``
    headers, and single-line values: strings, integers, booleans, and
    arrays of those.  This is intentionally *not* a general TOML parser
    — it exists so the contract loads on interpreters without
    :mod:`tomllib`; a round-trip test asserts it agrees with tomllib on
    the checked-in contract.
    """
    doc: Dict[str, object] = {}
    current: Dict[str, object] = doc
    for raw in text.splitlines():
        line = _strip_comment(raw).strip()
        if not line:
            continue
        if line.startswith("[["):
            name = line[2:].rstrip("]").strip()
            existing = doc.setdefault(name, [])
            if not isinstance(existing, list):
                raise ValueError(f"contract TOML: `{name}` redefined")
            table: Dict[str, object] = {}
            existing.append(table)
            current = table
        elif line.startswith("["):
            name = line[1:].rstrip("]").strip()
            sub: Dict[str, object] = {}
            doc[name] = sub
            current = sub
        else:
            key, sep, rest = line.partition("=")
            if not sep:
                raise ValueError(f"contract TOML: unparsable line {raw!r}")
            value = rest.strip()
            if value.startswith("[") and value.endswith("]"):
                current[key.strip()] = [
                    _parse_scalar(item) for item in _split_items(value[1:-1])]
            else:
                current[key.strip()] = _parse_scalar(value)
    return doc


# -- the rule ------------------------------------------------------------------


class ContractRule(RuleVisitor):
    """DAL010: an import the architecture contract does not allow.

    Violations of contract entries that carry an ``alias`` are reported
    under the alias code (DAL007/008/009) with the legacy wording, so
    existing suppressions, docs, and report consumers keep working.
    """

    code = "DAL010"
    summary = ("import contradicts the declared architecture contract "
               "(ARCHITECTURE.toml)")
    rationale = (
        "The layer DAG is what keeps the reproduction testable: geometry "
        "and text are pure vocabulary, core depends only on them, the "
        "service/cluster/net stack layers strictly above, and the "
        "language layer binds to caller-supplied backends.  v1 enforced "
        "three hand-written slices of this (DAL007 transports, DAL008 "
        "language purity, DAL009 chaos containment); the contract file "
        "declares the whole DAG once and this rule enforces every edge, "
        "so a new package is governed the moment it appears in "
        "ARCHITECTURE.toml rather than when someone writes a rule for "
        "it.  Aliased entries keep their legacy codes in reports.")

    def run(self) -> List[Finding]:
        """Check every import of the module against the contract."""
        contract = (self.contract if isinstance(self.contract, Contract)
                    else default_contract())
        for ref in iter_imports(self.ctx.tree, self.ctx.module_path):
            self._check_external(contract, ref)
            self._check_restricted(contract, ref)
            self._check_layering(contract, ref)
        return self.findings

    def _emit_ref(self, code: str, ref: ImportRef, message: str) -> None:
        self.findings.append(Finding(
            code=code, message=message, path=self.ctx.path,
            line=ref.line, col=ref.col,
            snippet=self.ctx.line_text(ref.line).strip()))

    def _check_external(self, contract: Contract, ref: ImportRef) -> None:
        root = ref.module[0] if ref.module else ""
        if not root:
            return
        unit = unit_of(self.ctx.module_path)
        for ext in contract.externals:
            if root in ext.modules and unit not in ext.allowed_in:
                self._emit_ref(
                    ext.alias or self.code, ref,
                    (ext.message or GENERIC_EXTERNAL_MESSAGE)
                    .format(module=root))

    def _check_restricted(self, contract: Contract,
                          ref: ImportRef) -> None:
        for res in contract.restricted:
            parts = tuple(res.module.split("."))
            hit = (ref.module[:len(parts)] == parts
                   or (ref.module == parts[:-1] and parts[-1] in ref.names))
            if hit and self.ctx.module_path not in res.allowed_in:
                self._emit_ref(
                    res.alias or self.code, ref,
                    (res.message or GENERIC_RESTRICTED_MESSAGE)
                    .format(module=res.module))

    def _check_layering(self, contract: Contract, ref: ImportRef) -> None:
        module_path = self.ctx.module_path
        if not module_path.startswith("repro/"):
            return
        if not ref.module or ref.module[0] != "repro":
            return
        src_unit = unit_of(module_path)
        layer = contract.layer(src_unit)
        targets: List[str] = []
        if len(ref.module) >= 2:
            targets.append(ref.module[1])
        else:  # `from repro import X` — names may be packages.
            for name in ref.names:
                if name in contract.layers or (layer is not None
                                               and bool(layer.alias)):
                    targets.append(name)
        for target in targets:
            if target == src_unit:
                continue
            if layer is None:
                self._emit_ref(
                    self.code, ref,
                    f"layer `{src_unit}` is not declared in "
                    "ARCHITECTURE.toml; add a [[layer]] entry with its "
                    "dependencies")
                continue
            allowed: Set[str] = set(layer.deps)
            if ref.deferred:
                allowed |= set(layer.deferred)
            if target in allowed:
                continue
            if layer.alias:
                message = (layer.message.format(target=target)
                           if layer.message else
                           f"layer `{src_unit}` may not import "
                           f"`repro.{target}`")
                self._emit_ref(layer.alias, ref, message)
            else:
                kind = ("function-local import" if ref.deferred
                        else "module-level import")
                allowed_text = ", ".join(sorted(allowed)) or "nothing"
                self._emit_ref(
                    self.code, ref,
                    f"layer `{src_unit}` may not import `repro.{target}` "
                    f"({kind}); ARCHITECTURE.toml allows: {allowed_text}")


__all__ = [
    "Boundary",
    "Contract",
    "ContractRule",
    "DEFAULT_CONTRACT_PATH",
    "ExternalRule",
    "Layer",
    "RestrictedRule",
    "default_contract",
    "parse_toml",
]
