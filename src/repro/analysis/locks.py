"""Runtime lock-order tracking: a deadlock detector for the threaded core.

Four subsystems take locks (buffer pool, result cache, metrics registry,
mutable index) and two more coordinate over them (engine, replica sets).
None of them may ever acquire those locks in conflicting orders — a cycle
in the "held A while acquiring B" graph is a latent deadlock that only
fires under the right interleaving, which tests rarely produce.

This module makes the order *observable*.  :func:`make_lock` is the one
lock factory the concurrent modules use:

* **Detection off** (the default): it returns a plain
  ``threading.Lock``/``RLock`` — the production object, zero wrapper,
  zero per-acquire cost.  This mirrors :mod:`repro.trace`'s
  disabled-path contract (and is even cheaper: the check happens once at
  lock *creation*, not per operation).
* **Detection on** (``DESKS_LOCK_TRACKING=1`` in the environment, or
  :func:`enable_lock_tracking` from tests): it returns a
  :class:`TrackedLock` that records, per thread, which named locks were
  held at every acquisition, building a directed *acquisition graph*.

:meth:`LockTracker.report` then answers the two questions that matter:
is the graph cycle-free (no lock inversions anywhere), and what stack
acquired each edge (so a violation points at code, not at a graph).

Locks are named by *role*, not by instance — every ``BufferPool`` lock is
``storage.buffer_pool`` — because deadlock discipline is a property of
code paths, not of objects: if *any* pool lock is taken while *any*
cache lock is held somewhere, the reverse order anywhere else is a bug.
"""

from __future__ import annotations

import os
import threading
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

try:
    from typing import Protocol
except ImportError:  # pragma: no cover - py < 3.8 fallback
    Protocol = object  # type: ignore[assignment]

ENV_FLAG = "DESKS_LOCK_TRACKING"


class LockLike(Protocol):
    """Structural type of what :func:`make_lock` returns.

    Both raw ``threading`` locks and :class:`TrackedLock` satisfy it, so
    instrumented modules type against the factory, not a concrete class.
    """

    def acquire(self, blocking: bool = ...,
                timeout: float = ...) -> bool: ...  # pragma: no cover

    def release(self) -> None: ...  # pragma: no cover

    def __enter__(self) -> bool: ...  # pragma: no cover

    def __exit__(self, *exc: object) -> object: ...  # pragma: no cover


@dataclass
class LockEdge:
    """One observed "held ``src`` while acquiring ``dst``" relation."""

    src: str
    dst: str
    count: int = 0
    threads: Set[int] = field(default_factory=set)
    #: Trimmed stack of the first acquisition that created the edge.
    stack: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for reports."""
        return {"src": self.src, "dst": self.dst, "count": self.count,
                "threads": len(self.threads), "stack": list(self.stack)}


@dataclass
class LockOrderReport:
    """The verdict over one tracked run."""

    edges: List[LockEdge]
    cycles: List[List[str]]
    inversions: List[Tuple[str, str]]
    acquisitions: int

    @property
    def clean(self) -> bool:
        """True when the acquisition graph is cycle-free."""
        return not self.cycles and not self.inversions

    def render(self) -> str:
        """Human-readable report: edges, then any cycles with stacks."""
        lines = [f"lock acquisitions: {self.acquisitions}, "
                 f"distinct order edges: {len(self.edges)}"]
        for edge in sorted(self.edges, key=lambda e: (e.src, e.dst)):
            lines.append(f"  {edge.src} -> {edge.dst} "
                         f"(x{edge.count}, {len(edge.threads)} thread(s))")
        if self.clean:
            lines.append("no lock-order cycles detected")
            return "\n".join(lines)
        for pair in self.inversions:
            lines.append(f"INVERSION: {pair[0]} <-> {pair[1]}")
        for cycle in self.cycles:
            lines.append("CYCLE: " + " -> ".join(cycle + cycle[:1]))
        by_key = {(e.src, e.dst): e for e in self.edges}
        shown = set()
        for cycle in self.cycles:
            ring = cycle + cycle[:1]
            for src, dst in zip(ring, ring[1:]):
                edge = by_key.get((src, dst))
                if edge is None or (src, dst) in shown:
                    continue
                shown.add((src, dst))
                lines.append(f"  first `{src}` -> `{dst}` acquisition:")
                lines.extend(f"    {frame}" for frame in edge.stack)
        return "\n".join(lines)


class LockTracker:
    """Collects the per-thread acquisition graph from tracked locks.

    Thread-safe; its own synchronisation uses a raw ``threading.Lock``
    (tracking the tracker's lock would recurse).
    """

    def __init__(self, stack_depth: int = 6) -> None:
        self.stack_depth = stack_depth
        self._held = threading.local()
        self._edges: Dict[Tuple[str, str], LockEdge] = {}
        self._acquisitions = 0
        self._mutex = threading.Lock()

    # -- hooks called by TrackedLock -----------------------------------------

    def _stack(self) -> List[Tuple["TrackedLock", int]]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = self._held.stack = []
        return stack

    def on_acquire(self, lock: "TrackedLock") -> None:
        """Record that the current thread now holds ``lock``."""
        stack = self._stack()
        held_names = []
        for i, (held, depth) in enumerate(stack):
            if held is lock:
                # Reentrant re-acquire: deepen, no new edge (an RLock
                # nesting on itself is not an ordering event).
                stack[i] = (held, depth + 1)
                return
            held_names.append(held.name)
        thread_id = threading.get_ident()
        if held_names:
            frames = [
                f"{f.filename}:{f.lineno} in {f.name}: {f.line}"
                for f in traceback.extract_stack(limit=self.stack_depth + 2)
                [:-2]
            ]
            with self._mutex:
                self._acquisitions += 1
                for src in held_names:
                    if src == lock.name:
                        continue  # same role re-entered via another instance
                    key = (src, lock.name)
                    edge = self._edges.get(key)
                    if edge is None:
                        edge = self._edges[key] = LockEdge(
                            src, lock.name, stack=frames)
                    edge.count += 1
                    edge.threads.add(thread_id)
        else:
            with self._mutex:
                self._acquisitions += 1
        stack.append((lock, 1))

    def on_release(self, lock: "TrackedLock") -> None:
        """Record that the current thread released ``lock`` once."""
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            held, depth = stack[i]
            if held is lock:
                if depth > 1:
                    stack[i] = (held, depth - 1)
                else:
                    del stack[i]
                return
        # Release without a recorded acquire: either the lock was taken
        # before tracking was enabled or acquire/release crossed threads.
        # Neither is an ordering fact, so it is ignored rather than raised.

    def held_roles(self) -> Tuple[str, ...]:
        """Roles of the locks the *current thread* holds right now.

        The write sanitizer (:mod:`repro.analysis.shared`) calls this on
        every tracked attribute mutation: an empty tuple there means a
        shared object was written with no ``make_lock`` role held.
        """
        return tuple(lock.name for lock, _ in self._stack())

    # -- analysis ------------------------------------------------------------

    def edges(self) -> List[LockEdge]:
        """A snapshot of the acquisition graph's edges."""
        with self._mutex:
            return [LockEdge(e.src, e.dst, e.count, set(e.threads),
                             list(e.stack))
                    for e in self._edges.values()]

    def report(self) -> LockOrderReport:
        """Cycle/inversion analysis over everything observed so far."""
        edges = self.edges()
        graph: Dict[str, Set[str]] = {}
        for edge in edges:
            graph.setdefault(edge.src, set()).add(edge.dst)
            graph.setdefault(edge.dst, set())
        inversions = sorted(
            (a, b) for a in graph for b in graph[a]
            if a < b and a in graph.get(b, set()))
        cycles = _find_cycles(graph)
        with self._mutex:
            acquisitions = self._acquisitions
        return LockOrderReport(edges, cycles, inversions, acquisitions)


def _find_cycles(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Elementary cycles via DFS; each reported once, rotated canonical."""
    cycles: Set[Tuple[str, ...]] = set()
    for start in graph:
        path: List[str] = []
        on_path: Set[str] = set()

        def dfs(node: str) -> None:
            path.append(node)
            on_path.add(node)
            for succ in sorted(graph.get(node, ())):
                if succ == start:
                    cycles.add(_canonical(path))
                elif succ not in on_path and succ > start:
                    # Only walk nodes > start: every cycle is found from
                    # its smallest member exactly once.
                    dfs(succ)
            path.pop()
            on_path.discard(node)

        dfs(start)
    return sorted(list(c) for c in cycles)


def _canonical(path: List[str]) -> Tuple[str, ...]:
    smallest = min(range(len(path)), key=lambda i: path[i])
    return tuple(path[smallest:] + path[:smallest])


class TrackedLock:
    """Drop-in ``Lock``/``RLock`` that reports acquisitions to a tracker.

    Supports the full lock protocol (``acquire``/``release``, context
    manager, ``blocking``/``timeout``), so instrumented modules behave
    identically with tracking on — just slower, which is why production
    runs get raw locks from :func:`make_lock` instead.
    """

    __slots__ = ("name", "_inner", "_tracker")

    def __init__(self, name: str, tracker: LockTracker,
                 reentrant: bool = False) -> None:
        self.name = name
        self._inner = (threading.RLock() if reentrant
                       else threading.Lock())
        self._tracker = tracker

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the underlying lock; records the ordering on success."""
        # This *is* the lock protocol implementation, not a use site; the
        # caller holds the with/try-finally.
        acquired = self._inner.acquire(blocking, timeout)  # desks: noqa-DAL003
        if acquired:
            self._tracker.on_acquire(self)
        return acquired

    def release(self) -> None:
        """Release the underlying lock (tracker first: still held here)."""
        self._tracker.on_release(self)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TrackedLock({self.name!r})"


# -- global switch -------------------------------------------------------------

_tracker: Optional[LockTracker] = None


def lock_tracking_enabled() -> bool:
    """True when :func:`make_lock` currently returns tracked locks."""
    return _tracker is not None


def get_lock_tracker() -> Optional[LockTracker]:
    """The active tracker, or ``None`` when tracking is off."""
    return _tracker


def enable_lock_tracking(
        tracker: Optional[LockTracker] = None) -> LockTracker:
    """Switch :func:`make_lock` to tracked locks; returns the tracker.

    Affects locks created *after* the call — enable tracking before
    constructing the engines/pools under test.  Idempotent when already
    enabled (keeps the existing tracker unless a new one is passed).
    """
    global _tracker
    if tracker is not None:
        _tracker = tracker
    elif _tracker is None:
        _tracker = LockTracker()
    return _tracker


def disable_lock_tracking() -> None:
    """Back to raw locks for subsequently created locks."""
    global _tracker
    _tracker = None


def make_lock(name: str, *, reentrant: bool = False) -> LockLike:
    """The project lock factory: raw lock normally, tracked under the flag.

    ``name`` is the lock's *role* (e.g. ``"storage.buffer_pool"``); see
    the module docstring for why roles, not instances, are the graph
    nodes.  ``reentrant=True`` yields an RLock either way.
    """
    if _tracker is None:
        return threading.RLock() if reentrant else threading.Lock()
    return TrackedLock(name, _tracker, reentrant=reentrant)


if os.environ.get(ENV_FLAG, "").strip() not in ("", "0", "false"):
    enable_lock_tracking()
