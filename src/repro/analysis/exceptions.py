"""Exception-flow analysis (DAL011): typed errors at the RPC boundary.

The wire protocol's promise is that a peer only ever sees one of the
typed error codes (OVERLOAD / BAD_REQUEST / INTERNAL / SHUTTING_DOWN).
That holds exactly when every exception that can reach an RPC entry
point — the contract's ``[[boundary]]`` functions: ``ShardServer.
_dispatch``, ``ClusterFrontend._dispatch``, ``DqlExecutor.execute`` —
is either converted there or belongs to a family the boundary's callers
convert (its ``allowed`` list, subclasses included).

:class:`ExceptionFlowRule` checks both halves:

* **escape facet** — an interprocedural fixpoint propagates the set of
  exception types each function can raise (explicit ``raise`` sites,
  re-raises, and resolvable calls) through the
  :class:`~repro.analysis.graph.CallGraph`, filtering at every
  ``try``/``except`` with subclass-aware matching over the project's
  own exception hierarchy plus the builtin one.  Any type that escapes
  a boundary beyond its allow-list is flagged at the boundary, citing
  the originating ``raise`` site.
* **handler facet** — every ``except Exception`` / ``except
  BaseException`` / bare ``except:`` whose body neither re-raises nor
  sits in a declared boundary is flagged: a handler that swallows
  everything silently discards the cause the typed error should carry.

The propagation is deliberately *under-approximate*: calls the graph
cannot resolve, raises of non-literal values, and exceptions raised by
builtins (``struct.error`` from ``unpack`` and friends) contribute
nothing.  What the pass reports is therefore real; what it misses is
covered at runtime by the protocol tests' corruption/overload matrix.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .contract import Contract, default_contract
from .engine import Finding, ProgramRule
from .graph import CallGraph, ClassInfo, ProgramIndex

#: Builtin exception -> parent, for subclass matching without importing.
_BUILTIN_BASES: Dict[str, str] = {
    "ArithmeticError": "Exception",
    "AssertionError": "Exception",
    "AttributeError": "Exception",
    "BlockingIOError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "BufferError": "Exception",
    "ChildProcessError": "OSError",
    "ConnectionAbortedError": "ConnectionError",
    "ConnectionError": "OSError",
    "ConnectionRefusedError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "EOFError": "Exception",
    "Exception": "BaseException",
    "FileExistsError": "OSError",
    "FileNotFoundError": "OSError",
    "FloatingPointError": "ArithmeticError",
    "GeneratorExit": "BaseException",
    "IOError": "OSError",
    "IndexError": "LookupError",
    "InterruptedError": "OSError",
    "IsADirectoryError": "OSError",
    "KeyError": "LookupError",
    "KeyboardInterrupt": "BaseException",
    "LookupError": "Exception",
    "MemoryError": "Exception",
    "NameError": "Exception",
    "NotADirectoryError": "OSError",
    "NotImplementedError": "RuntimeError",
    "OSError": "Exception",
    "OverflowError": "ArithmeticError",
    "PermissionError": "OSError",
    "RecursionError": "RuntimeError",
    "RuntimeError": "Exception",
    "StopAsyncIteration": "Exception",
    "StopIteration": "Exception",
    "SystemExit": "BaseException",
    "TimeoutError": "OSError",
    "TypeError": "Exception",
    "UnicodeDecodeError": "ValueError",
    "UnicodeEncodeError": "ValueError",
    "UnicodeError": "ValueError",
    "ValueError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
}

#: Exception types that `except Exception` does NOT catch.
_OUTSIDE_EXCEPTION = {"BaseException", "KeyboardInterrupt", "SystemExit",
                      "GeneratorExit"}

_BROAD = {"Exception", "BaseException"}

#: type name -> (file path, line of the originating raise).
_Escapes = Dict[str, Tuple[str, int]]


class _Hierarchy:
    """Subclass queries over project classes + the builtin table."""

    def __init__(self, classes: Dict[str, ClassInfo]) -> None:
        self.classes = classes

    def is_subtype(self, name: str, base: str) -> bool:
        """True when an instance of ``name`` is caught by ``except base``.

        ``Exception`` catches everything except the BaseException-only
        types (soundly over-approximate for unknown names); otherwise
        the relation must be provable from the known hierarchy.
        """
        if name == base or base == "BaseException":
            return True
        if base == "Exception":
            return name not in _OUTSIDE_EXCEPTION
        stack = [name]
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            if current == base:
                return True
            info = self.classes.get(current)
            if info is not None:
                stack.extend(info.bases)
            elif current in _BUILTIN_BASES:
                stack.append(_BUILTIN_BASES[current])
        return False


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _handler_types(handler: ast.ExceptHandler) -> Optional[List[str]]:
    """Caught type names, or ``None`` for a bare ``except:``."""
    if handler.type is None:
        return None
    nodes = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    out: List[str] = []
    for node in nodes:
        name = _terminal(node)
        if name is not None:
            out.append(name)
    return out


_RERAISE = "__reraise__"


def _raise_type(exc: ast.expr, handler_var: Optional[str]) -> Optional[str]:
    """Type name a ``raise <exc>`` throws; ``_RERAISE`` for the caught
    variable; ``None`` when unresolvable."""
    if isinstance(exc, ast.Name):
        if handler_var is not None and exc.id == handler_var:
            return _RERAISE
        return exc.id if exc.id[:1].isupper() else None
    if isinstance(exc, ast.Call):
        name = _terminal(exc.func)
        return name if name and name[:1].isupper() else None
    if isinstance(exc, ast.Attribute):
        return exc.attr if exc.attr[:1].isupper() else None
    return None


def _expr_nodes(stmt: ast.AST) -> Iterator[ast.AST]:
    """Expression nodes belonging to ``stmt`` itself (not nested
    statements, not lambda bodies)."""
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, (ast.stmt, ast.Lambda)):
            continue
        yield child
        yield from _expr_nodes(child)


class _EscapeAnalysis:
    """Escape set of one function body under the current estimates."""

    def __init__(self, graph: CallGraph, hierarchy: _Hierarchy,
                 estimates: Dict[str, _Escapes], qualname: str,
                 fs_path: str) -> None:
        self.graph = graph
        self.hierarchy = hierarchy
        self.estimates = estimates
        self.qualname = qualname
        self.fs_path = fs_path

    def run(self, node: ast.AST) -> _Escapes:
        """Types that can escape the function, with first raise sites."""
        body = getattr(node, "body", [])
        if not isinstance(body, list):
            return {}
        return self._stmts(body, {}, None)

    def _stmts(self, stmts: List[ast.stmt], reraise: _Escapes,
               handler_var: Optional[str]) -> _Escapes:
        out: _Escapes = {}
        for stmt in stmts:
            for name, origin in self._stmt(stmt, reraise,
                                           handler_var).items():
                out.setdefault(name, origin)
        return out

    def _stmt(self, stmt: ast.stmt, reraise: _Escapes,
              handler_var: Optional[str]) -> _Escapes:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return {}  # runs later, analysed as its own function
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, reraise, handler_var)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, reraise, handler_var)
        out = self._call_escapes(stmt)
        for _, value in ast.iter_fields(stmt):
            if isinstance(value, list) and value and \
                    isinstance(value[0], ast.stmt):
                for name, origin in self._stmts(value, reraise,
                                                handler_var).items():
                    out.setdefault(name, origin)
        return out

    def _raise(self, stmt: ast.Raise, reraise: _Escapes,
               handler_var: Optional[str]) -> _Escapes:
        if stmt.exc is None:
            return dict(reraise)
        name = _raise_type(stmt.exc, handler_var)
        if name == _RERAISE:
            return dict(reraise)
        out = self._call_escapes(stmt)
        if name is not None:
            out.setdefault(name, (self.fs_path, stmt.lineno))
        return out

    def _try(self, stmt: ast.Try, reraise: _Escapes,
             handler_var: Optional[str]) -> _Escapes:
        remaining = dict(self._stmts(stmt.body, reraise, handler_var))
        out: _Escapes = {}
        for handler in stmt.handlers:
            caught = _handler_types(handler)
            matched: _Escapes = {}
            for name in sorted(remaining):
                if caught is None or any(
                        self.hierarchy.is_subtype(name, c) for c in caught):
                    matched[name] = remaining.pop(name)
            for name, origin in self._stmts(
                    handler.body, matched, handler.name).items():
                out.setdefault(name, origin)
        for name, origin in remaining.items():
            out.setdefault(name, origin)
        for block in (stmt.orelse, stmt.finalbody):
            for name, origin in self._stmts(block, reraise,
                                            handler_var).items():
                out.setdefault(name, origin)
        return out

    def _call_escapes(self, stmt: ast.AST) -> _Escapes:
        out: _Escapes = {}
        for node in _expr_nodes(stmt):
            if isinstance(node, ast.Call):
                target = self.graph.resolve(self.qualname, node)
                if target is not None:
                    for name, origin in self.estimates.get(
                            target, {}).items():
                        out.setdefault(name, origin)
        return out


def _walk_handlers(tree: ast.Module,
                   ) -> List[Tuple[ast.ExceptHandler, Tuple[str, ...]]]:
    """Every except handler with its enclosing function-name chain."""
    results: List[Tuple[ast.ExceptHandler, Tuple[str, ...]]] = []

    def visit(node: ast.AST, chain: Tuple[str, ...],
              cls: Optional[str]) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, chain, child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{cls}.{child.name}" if cls else child.name
                visit(child, chain + (name,), cls)
            else:
                if isinstance(child, ast.ExceptHandler):
                    results.append((child, chain))
                visit(child, chain, cls)

    visit(tree, (), None)
    return results


def _contains_raise(body: List[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Raise):
                return True
    return False


class ExceptionFlowRule(ProgramRule):
    """DAL011: exceptions escaping the RPC boundary, swallowed causes."""

    code = "DAL011"
    summary = ("exception can escape an RPC boundary untyped, or a broad "
               "handler swallows the cause")
    rationale = (
        "A peer of the wire protocol must only ever observe the typed "
        "error codes (OVERLOAD / BAD_REQUEST / INTERNAL / SHUTTING_DOWN) "
        "— the resilience layer's breakers, retries, and hedging all "
        "classify on them.  An exception that escapes ShardServer."
        "_dispatch, ClusterFrontend._dispatch, or DqlExecutor.execute "
        "outside the contract's allow-list tears the connection with no "
        "typed frame, and a broad `except Exception` that swallows the "
        "cause produces INTERNAL errors that cannot be diagnosed.  The "
        "escape facet is proven interprocedurally over the call graph; "
        "unresolvable calls contribute nothing (under-approximate by "
        "design), with the runtime corruption/overload matrix covering "
        "the remainder.")

    def check(self, program: ProgramIndex) -> List[Finding]:
        """Run both facets over the parsed program."""
        contract = (self.contract if isinstance(self.contract, Contract)
                    else default_contract())
        graph = CallGraph(program)
        hierarchy = _Hierarchy(graph.classes)
        findings = self._handler_facet(program, contract)
        findings.extend(self._escape_facet(program, contract, graph,
                                           hierarchy))
        return findings

    # -- handler facet -------------------------------------------------------

    def _handler_facet(self, program: ProgramIndex,
                       contract: Contract) -> List[Finding]:
        out: List[Finding] = []
        for module_path in sorted(program.modules):
            mod = program.modules[module_path]
            lines = mod.source.splitlines()
            for handler, chain in _walk_handlers(mod.tree):
                caught = _handler_types(handler)
                if caught is not None and not set(caught) & _BROAD:
                    continue
                if any(contract.is_boundary(module_path, name)
                       for name in chain):
                    continue
                if _contains_raise(handler.body):
                    continue
                label = ("bare `except:`" if caught is None else
                         f"`except {'/'.join(sorted(set(caught) & _BROAD))}`")
                line = handler.lineno
                snippet = (lines[line - 1].strip()
                           if 1 <= line <= len(lines) else "")
                out.append(Finding(
                    code=self.code,
                    message=(f"{label} swallows the exception and discards "
                             "its cause; narrow the type, re-raise "
                             "(`raise` / `raise ... from exc`), or add a "
                             "justified `# desks: noqa-DAL011`"),
                    path=mod.path, line=line, col=handler.col_offset,
                    snippet=snippet))
        return out

    # -- escape facet --------------------------------------------------------

    def _escape_facet(self, program: ProgramIndex, contract: Contract,
                      graph: CallGraph,
                      hierarchy: _Hierarchy) -> List[Finding]:
        boundaries = [b for b in contract.boundaries
                      if b.module in program.modules]
        if not boundaries:
            return []
        estimates = self._fixpoint(program, graph, hierarchy)
        out: List[Finding] = []
        for boundary in boundaries:
            qualname = CallGraph.qualname(boundary.module,
                                          boundary.function)
            info = graph.functions.get(qualname)
            if info is None:
                continue
            mod = program.modules[boundary.module]
            lines = mod.source.splitlines()
            for name in sorted(estimates.get(qualname, {})):
                if any(hierarchy.is_subtype(name, allowed)
                       for allowed in boundary.allowed):
                    continue
                origin_path, origin_line = estimates[qualname][name]
                line = getattr(info.node, "lineno", 1)
                snippet = (lines[line - 1].strip()
                           if 1 <= line <= len(lines) else "")
                out.append(Finding(
                    code=self.code,
                    message=(f"`{boundary.function}` can let `{name}` "
                             "escape to the wire (raised at "
                             f"{origin_path}:{origin_line}); convert it "
                             "to a typed protocol error (OVERLOAD / "
                             "BAD_REQUEST / INTERNAL / SHUTTING_DOWN) or "
                             "extend the boundary's allow-list in "
                             "ARCHITECTURE.toml"),
                    path=mod.path, line=line,
                    col=getattr(info.node, "col_offset", 0),
                    snippet=snippet))
        return out

    def _fixpoint(self, program: ProgramIndex, graph: CallGraph,
                  hierarchy: _Hierarchy) -> Dict[str, _Escapes]:
        estimates: Dict[str, _Escapes] = {
            qualname: {} for qualname in graph.functions}
        # Key sets grow monotonically, so this terminates; the bound is
        # a backstop against resolution bugs, not a tuning knob.
        for _ in range(100):
            changed = False
            for qualname in sorted(graph.functions):
                info = graph.functions[qualname]
                fs_path = program.modules[info.module_path].path
                analysis = _EscapeAnalysis(graph, hierarchy, estimates,
                                           qualname, fs_path)
                new = analysis.run(info.node)
                if set(new) != set(estimates[qualname]):
                    changed = True
                estimates[qualname] = new
            if not changed:
                break
        return estimates


__all__ = ["ExceptionFlowRule"]
