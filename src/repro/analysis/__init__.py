"""Static analysis + runtime race detection for the DESKS codebase.

Three layers (see ``docs/ANALYSIS.md``):

* :class:`LintEngine` + the ``DALxxx`` rule catalog — an AST linter for
  the *project's own* invariants (angle arithmetic confined to
  :mod:`repro.geometry`, WAL-before-apply, buffer-pool-only page I/O,
  deterministic search/recovery);
* :func:`make_lock` / :class:`TrackedLock` / :class:`LockTracker` — a
  runtime lock-order race detector for the six concurrent modules,
  zero-cost when disabled;
* the ``repro lint`` CLI subcommand and CI wiring that keep ``src/``
  clean.
"""

from .engine import (
    Finding,
    LintEngine,
    LintReport,
    ModuleContext,
    RuleVisitor,
)
from .locks import (
    ENV_FLAG,
    LockEdge,
    LockOrderReport,
    LockTracker,
    TrackedLock,
    disable_lock_tracking,
    enable_lock_tracking,
    get_lock_tracker,
    lock_tracking_enabled,
    make_lock,
)
from .rules import ALL_RULES, RULE_INDEX, rule_catalog

__all__ = [
    "ALL_RULES",
    "ENV_FLAG",
    "Finding",
    "LintEngine",
    "LintReport",
    "LockEdge",
    "LockOrderReport",
    "LockTracker",
    "ModuleContext",
    "RULE_INDEX",
    "RuleVisitor",
    "TrackedLock",
    "disable_lock_tracking",
    "enable_lock_tracking",
    "get_lock_tracker",
    "lock_tracking_enabled",
    "make_lock",
    "rule_catalog",
]
