"""Static analysis + runtime race detection for the DESKS codebase.

Four layers (see ``docs/ANALYSIS.md``):

* :class:`LintEngine` + the ``DALxxx`` rule catalog — an AST linter for
  the *project's own* invariants (angle arithmetic confined to
  :mod:`repro.geometry`, WAL-before-apply, buffer-pool-only page I/O,
  deterministic search/recovery);
* whole-program passes over the full tree — the import/call graph
  (:mod:`repro.analysis.graph`), the declarative architecture contract
  ``ARCHITECTURE.toml`` (DAL010, :mod:`repro.analysis.contract`), and
  interprocedural exception-flow checking at the RPC boundaries
  (DAL011, :mod:`repro.analysis.exceptions`);
* :func:`make_lock` / :class:`TrackedLock` / :class:`LockTracker` — a
  runtime lock-order race detector for the concurrent modules, plus the
  shared-state write sanitizer (:func:`register_shared` /
  :class:`WriteTracker`, DAL012) that catches lock-free mutations of
  thread-shared objects; both zero-cost when disabled;
* the ``repro lint`` CLI subcommand (including ``--graph`` export) and
  CI wiring that keep ``src/`` clean.
"""

from .contract import (
    Boundary,
    Contract,
    ContractRule,
    default_contract,
)
from .engine import (
    Finding,
    LintEngine,
    LintReport,
    ModuleContext,
    ProgramRule,
    RuleVisitor,
)
from .exceptions import ExceptionFlowRule
from .graph import (
    CallGraph,
    ImportGraph,
    ProgramIndex,
    build_graph,
)
from .locks import (
    ENV_FLAG,
    LockEdge,
    LockOrderReport,
    LockTracker,
    TrackedLock,
    disable_lock_tracking,
    enable_lock_tracking,
    get_lock_tracker,
    lock_tracking_enabled,
    make_lock,
)
from .rules import (
    ALIAS_CODES,
    ALL_RULES,
    PROGRAM_RULES,
    RULE_INDEX,
    rule_catalog,
)
from .shared import (
    ENV_WRITE_FLAG,
    SharedStateRule,
    WriteReport,
    WriteTracker,
    WriteViolation,
    disable_write_tracking,
    enable_write_tracking,
    get_write_tracker,
    register_shared,
    write_tracking_enabled,
)

__all__ = [
    "ALIAS_CODES",
    "ALL_RULES",
    "Boundary",
    "CallGraph",
    "Contract",
    "ContractRule",
    "ENV_FLAG",
    "ENV_WRITE_FLAG",
    "ExceptionFlowRule",
    "Finding",
    "ImportGraph",
    "LintEngine",
    "LintReport",
    "LockEdge",
    "LockOrderReport",
    "LockTracker",
    "ModuleContext",
    "PROGRAM_RULES",
    "ProgramIndex",
    "ProgramRule",
    "RULE_INDEX",
    "RuleVisitor",
    "SharedStateRule",
    "TrackedLock",
    "WriteReport",
    "WriteTracker",
    "WriteViolation",
    "build_graph",
    "default_contract",
    "disable_lock_tracking",
    "disable_write_tracking",
    "enable_lock_tracking",
    "enable_write_tracking",
    "get_lock_tracker",
    "get_write_tracker",
    "lock_tracking_enabled",
    "make_lock",
    "register_shared",
    "rule_catalog",
    "write_tracking_enabled",
]
