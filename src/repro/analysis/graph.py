"""Whole-program import/call graphs over a parsed module set.

This is the substrate for the v2 interprocedural passes: a
:class:`ProgramIndex` parses every module under a target once and keys
it by *module path* (``repro/net/server.py``); :class:`ImportGraph`
resolves every import statement (absolute, relative, deferred
function-local) to an edge between modules with deterministic ordering
and JSON + DOT export (``repro lint --graph``); :class:`CallGraph`
resolves the calls the exception-flow pass (DAL011) walks.

Everything here is stdlib-only and deterministic: modules, edges, and
functions are sorted, so two runs over the same tree serialise
byte-identically (the golden-graph test in
``tests/analysis/test_graph.py`` asserts exactly that).

Resolution is deliberately *under-approximate*: a call or import that
cannot be resolved from the parsed tree contributes nothing, it is
never guessed.  The passes built on top (DAL010/DAL011) are therefore
sound over what they see and silent over what they cannot see — the
honest trade for an analysis with no imports executed.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import LintEngine, _module_path


def unit_of(module_path: str) -> str:
    """The architecture unit a module belongs to.

    ``repro/net/server.py`` -> ``net``; top-level modules are their own
    unit (``repro/cli.py`` -> ``cli``, ``repro/__init__.py`` ->
    ``__init__``).  Modules outside the ``repro`` package have no unit
    (empty string) and are ignored by the layer contract.
    """
    if not module_path.startswith("repro/"):
        return ""
    head = module_path[len("repro/"):].split("/")[0]
    return head[:-3] if head.endswith(".py") else head


@dataclass(frozen=True)
class SourceModule:
    """One parsed module: location, package-relative path, AST."""

    path: str
    module_path: str
    unit: str
    source: str
    tree: ast.Module = field(repr=False)


class ProgramIndex:
    """Every parsed module of one lint run, keyed by module path."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules: Dict[str, SourceModule] = {
            m.module_path: m
            for m in sorted(modules, key=lambda m: m.module_path)}

    @classmethod
    def from_sources(cls, items: Iterable[Tuple[str, str, ast.Module]],
                     ) -> "ProgramIndex":
        """Build from already-parsed ``(path, source, tree)`` triples."""
        modules = []
        for path, source, tree in items:
            module_path = _module_path(path)
            modules.append(SourceModule(
                path=path, module_path=module_path,
                unit=unit_of(module_path), source=source, tree=tree))
        return cls(modules)

    @classmethod
    def from_paths(cls, targets: Sequence[str]) -> "ProgramIndex":
        """Discover, read, and parse every python file under ``targets``.

        Files that fail to read or parse are skipped (the lint engine
        reports those separately); the index only ever holds valid ASTs.
        """
        items: List[Tuple[str, str, ast.Module]] = []
        for target in targets:
            for path in LintEngine.discover(target):
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        source = handle.read()
                    tree = ast.parse(source, filename=path)
                except (SyntaxError, OSError):
                    continue
                items.append((path, source, tree))
        return cls.from_sources(items)

    def resolve(self, parts: Sequence[str]) -> Optional[str]:
        """Module path for dotted ``parts``, or ``None`` if not indexed.

        Tries the plain module first (``repro/net/server.py``), then the
        package ``__init__`` (``repro/net/__init__.py``).
        """
        if not parts:
            return None
        base = "/".join(parts)
        for candidate in (base + ".py", base + "/__init__.py"):
            if candidate in self.modules:
                return candidate
        return None

    def units(self) -> List[str]:
        """Sorted distinct units with at least one module."""
        return sorted({m.unit for m in self.modules.values() if m.unit})


@dataclass(frozen=True)
class ImportRef:
    """One import target in one statement, location included.

    ``module`` is the absolute dotted path as parts (relative levels
    already applied); ``names`` carries the imported names of a
    ``from ... import a, b`` (empty for a plain ``import``);
    ``deferred`` marks function-local imports, which the layer contract
    may allow where a module-level import is banned.
    """

    line: int
    col: int
    module: Tuple[str, ...]
    names: Tuple[str, ...]
    deferred: bool


def _absolute(module_path: str, level: int,
              module: Optional[str]) -> Tuple[str, ...]:
    """Resolve a relative import against the importing module's package."""
    package = module_path.split("/")[:-1]
    if level > 1:
        package = package[:len(package) - (level - 1)]
    return tuple(package + (module.split(".") if module else []))


def iter_imports(tree: ast.Module,
                 module_path: str) -> Iterator[ImportRef]:
    """Every import in ``tree`` as absolute :class:`ImportRef` records."""
    stack: List[Tuple[ast.AST, bool]] = [(tree, False)]
    while stack:
        node, deferred = stack.pop()
        for child in reversed(list(ast.iter_child_nodes(node))):
            inner = deferred or isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef))
            if isinstance(child, ast.Import):
                for alias in child.names:
                    yield ImportRef(
                        line=child.lineno, col=child.col_offset,
                        module=tuple(alias.name.split(".")),
                        names=(), deferred=deferred)
            elif isinstance(child, ast.ImportFrom):
                if child.level:
                    module = _absolute(module_path, child.level,
                                       child.module)
                else:
                    module = tuple((child.module or "").split("."))
                yield ImportRef(
                    line=child.lineno, col=child.col_offset,
                    module=module,
                    names=tuple(alias.name for alias in child.names),
                    deferred=deferred)
            else:
                stack.append((child, inner))


@dataclass(frozen=True)
class ImportEdge:
    """``src`` imports ``dst`` at ``line``.

    ``dst`` is a module path for internal edges and a bare root module
    name (``socket``) for external ones.
    """

    src: str
    dst: str
    line: int
    deferred: bool
    external: bool

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (stable key order via sort_keys at dump)."""
        return {"src": self.src, "dst": self.dst, "line": self.line,
                "deferred": self.deferred, "external": self.external}


class ImportGraph:
    """Module- and unit-level import structure with deterministic export."""

    def __init__(self, program: ProgramIndex,
                 edges: Sequence[ImportEdge]) -> None:
        self.program = program
        self.edges: List[ImportEdge] = sorted(
            edges, key=lambda e: (e.src, e.dst, e.line, e.deferred))

    @classmethod
    def build(cls, program: ProgramIndex) -> "ImportGraph":
        """Resolve every import of every indexed module to edges."""
        edges: List[ImportEdge] = []
        seen: Set[Tuple[str, str, int, bool]] = set()
        for module_path in sorted(program.modules):
            mod = program.modules[module_path]
            for ref in iter_imports(mod.tree, module_path):
                for dst, external in cls._targets(program, ref):
                    key = (module_path, dst, ref.line, ref.deferred)
                    if key in seen:
                        continue
                    seen.add(key)
                    edges.append(ImportEdge(
                        src=module_path, dst=dst, line=ref.line,
                        deferred=ref.deferred, external=external))
        return cls(program, edges)

    @staticmethod
    def _targets(program: ProgramIndex,
                 ref: ImportRef) -> List[Tuple[str, bool]]:
        """``(dst, external)`` pairs one :class:`ImportRef` contributes."""
        base = program.resolve(ref.module)
        if not ref.names:
            if base is not None:
                return [(base, False)]
            root = ref.module[0] if ref.module else ""
            return [(root, True)] if root else []
        out: List[Tuple[str, bool]] = []
        for name in ref.names:
            # `from pkg import name` may pull a submodule: prefer the
            # resolved submodule, then the package itself, and only then
            # fall back to an external root.
            sub = program.resolve(tuple(ref.module) + (name,))
            if sub is not None:
                out.append((sub, False))
            elif base is not None:
                out.append((base, False))
            elif ref.module:
                out.append((ref.module[0], True))
        return out

    # -- unit-level rollup ---------------------------------------------------

    def unit_table(self) -> List[Dict[str, object]]:
        """Per-unit dependency summary: module-level, deferred-only,
        and external imports, all sorted."""
        direct: Dict[str, Set[str]] = {}
        deferred: Dict[str, Set[str]] = {}
        external: Dict[str, Set[str]] = {}
        for unit in self.program.units():
            direct[unit] = set()
            deferred[unit] = set()
            external[unit] = set()
        for edge in self.edges:
            src_unit = unit_of(edge.src)
            if not src_unit:
                continue
            if edge.external:
                external[src_unit].add(edge.dst)
                continue
            dst_unit = unit_of(edge.dst)
            if not dst_unit or dst_unit == src_unit:
                continue
            (deferred if edge.deferred else direct)[src_unit].add(dst_unit)
        return [{"name": unit,
                 "imports": sorted(direct[unit]),
                 "deferred": sorted(deferred[unit] - direct[unit]),
                 "external": sorted(external[unit])}
                for unit in self.program.units()]

    # -- export --------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready document: modules, edges, unit rollup."""
        return {
            "schema": 1,
            "modules": [{"module": mp,
                         "unit": self.program.modules[mp].unit}
                        for mp in sorted(self.program.modules)],
            "edges": [e.to_dict() for e in self.edges],
            "units": self.unit_table(),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The graph as a JSON document (sorted keys: byte-stable)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_dot(self) -> str:
        """Unit-level digraph in DOT; deferred-only edges are dashed."""
        lines = ["digraph repro {", "  rankdir=LR;"]
        table = self.unit_table()
        for entry in table:
            lines.append(f'  "{entry["name"]}";')
        for entry in table:
            name = entry["name"]
            imports = entry["imports"]
            deferred = entry["deferred"]
            assert isinstance(imports, list) and isinstance(deferred, list)
            for dst in imports:
                lines.append(f'  "{name}" -> "{dst}";')
            for dst in deferred:
                lines.append(f'  "{name}" -> "{dst}" [style=dashed];')
        lines.append("}")
        return "\n".join(lines) + "\n"

    def write(self, base: str) -> Tuple[str, str]:
        """Write ``base.json`` and ``base.dot``; returns both paths."""
        json_path, dot_path = base + ".json", base + ".dot"
        for path, text in ((json_path, self.to_json() + "\n"),
                           (dot_path, self.to_dot())):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(text)
        return json_path, dot_path


# -- call graph ----------------------------------------------------------------


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module_path: str
    name: str
    class_name: Optional[str]
    node: ast.AST = field(repr=False)


@dataclass(frozen=True)
class ClassInfo:
    """One class definition: bases by simple name, methods by name."""

    module_path: str
    name: str
    bases: Tuple[str, ...]
    methods: Dict[str, str] = field(repr=False)


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _terminal(node.func)
    return None


class CallGraph:
    """Project-wide resolved calls, for interprocedural propagation.

    Resolution covers the forms that matter in this codebase: direct
    calls to module-level functions, ``self.method()`` within a class
    (bases included when resolvable by simple name), calls through
    ``from . import module`` / ``import pkg.mod`` module objects, and
    classmethod/constructor calls on imported classes.  Anything else
    is left unresolved and contributes no edge.
    """

    def __init__(self, program: ProgramIndex) -> None:
        self.program = program
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: module_path -> local name -> ("module", path) | ("symbol",
        #: path, name) import bindings.
        self._env: Dict[str, Dict[str, Tuple[str, ...]]] = {}
        self.calls: Dict[str, Tuple[str, ...]] = {}
        self._build()

    @staticmethod
    def qualname(module_path: str, name: str) -> str:
        """``repro/net/server.py::ShardServer._dispatch``."""
        return f"{module_path}::{name}"

    def _build(self) -> None:
        for module_path in sorted(self.program.modules):
            self._index_module(self.program.modules[module_path])
        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            self.calls[qualname] = tuple(sorted(self._resolve_calls(info)))

    def _index_module(self, mod: SourceModule) -> None:
        env: Dict[str, Tuple[str, ...]] = {}
        for ref in iter_imports(mod.tree, mod.module_path):
            base = self.program.resolve(ref.module)
            if not ref.names:
                if base is not None:
                    # `import a.b` binds `a` but in-project code always
                    # uses the terminal name or an alias; bind both ends.
                    env[ref.module[-1]] = ("module", base)
                continue
            for name in ref.names:
                sub = self.program.resolve(tuple(ref.module) + (name,))
                if sub is not None:
                    env[name] = ("module", sub)
                elif base is not None:
                    env[name] = ("symbol", base, name)
        self._env[mod.module_path] = env
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod.module_path, stmt.name, None, stmt)
            elif isinstance(stmt, ast.ClassDef):
                methods: Dict[str, str] = {}
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                        name = f"{stmt.name}.{item.name}"
                        self._add_function(mod.module_path, name,
                                           stmt.name, item)
                        methods[item.name] = self.qualname(
                            mod.module_path, name)
                bases = tuple(b for b in (_terminal(base)
                                          for base in stmt.bases)
                              if b is not None)
                self.classes.setdefault(stmt.name, ClassInfo(
                    mod.module_path, stmt.name, bases, methods))

    def _add_function(self, module_path: str, name: str,
                      class_name: Optional[str], node: ast.AST) -> None:
        qualname = self.qualname(module_path, name)
        self.functions[qualname] = FunctionInfo(
            qualname=qualname, module_path=module_path, name=name,
            class_name=class_name, node=node)

    # -- resolution ----------------------------------------------------------

    def resolve(self, qualname: str, call: ast.Call) -> Optional[str]:
        """Callee qualname for one call site inside ``qualname``, if any."""
        info = self.functions.get(qualname)
        if info is None:
            return None
        return self._resolve_call(info, call)

    def _module_symbol(self, module_path: str,
                       name: str) -> Optional[str]:
        """Function/class-constructor qualname for ``name`` defined (or
        re-exported nowhere — no star-import chasing) in a module."""
        direct = self.qualname(module_path, name)
        if direct in self.functions:
            return direct
        init = self.qualname(module_path, f"{name}.__init__")
        if init in self.functions:
            return init
        binding = self._env.get(module_path, {}).get(name)
        if binding and binding[0] == "symbol":
            return self._module_symbol(binding[1], binding[2])
        if binding and binding[0] == "module":
            return None
        return None

    def _method_on(self, class_name: str, method: str,
                   seen: Optional[Set[str]] = None) -> Optional[str]:
        if seen is None:
            seen = set()
        if class_name in seen:
            return None
        seen.add(class_name)
        info = self.classes.get(class_name)
        if info is None:
            return None
        if method in info.methods:
            return info.methods[method]
        for base in info.bases:
            found = self._method_on(base, method, seen)
            if found is not None:
                return found
        return None

    def _resolve_call(self, info: FunctionInfo,
                      call: ast.Call) -> Optional[str]:
        env = self._env.get(info.module_path, {})
        func = call.func
        if isinstance(func, ast.Name):
            return self._module_symbol(info.module_path, func.id)
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner == "self" and info.class_name is not None:
                return self._method_on(info.class_name, func.attr)
            binding = env.get(owner)
            if binding and binding[0] == "module":
                return self._module_symbol(binding[1], func.attr)
            if binding and binding[0] == "symbol":
                # Classmethod/static call on an imported class.
                target = self._module_symbol(binding[1], binding[2])
                if target is not None and target.endswith(".__init__"):
                    cls = target.rsplit("::", 1)[1].split(".")[0]
                    return self._method_on(cls, func.attr)
            # Class defined in this module: Target.method(...).
            if owner in self.classes and \
                    self.classes[owner].module_path == info.module_path:
                return self._method_on(owner, func.attr)
        return None

    def _resolve_calls(self, info: FunctionInfo) -> List[str]:
        out: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                target = self._resolve_call(info, node)
                if target is not None and target != info.qualname:
                    out.add(target)
        return sorted(out)


def build_graph(targets: Sequence[str]) -> ImportGraph:
    """Convenience: discover + parse ``targets``, build the import graph."""
    return ImportGraph.build(ProgramIndex.from_paths(targets))


__all__ = [
    "CallGraph",
    "ClassInfo",
    "FunctionInfo",
    "ImportEdge",
    "ImportGraph",
    "ImportRef",
    "ProgramIndex",
    "SourceModule",
    "build_graph",
    "iter_imports",
    "unit_of",
]
