"""The project lint engine: AST rules, ``noqa`` suppressions, reports.

:class:`LintEngine` parses each source file once, hands the tree to every
registered rule, and collects :class:`Finding`\\ s into a
:class:`LintReport` with deterministic ordering and both human and JSON
renderings.  Rules are small :class:`ast.NodeVisitor` subclasses (see
:class:`RuleVisitor`) keyed by a ``DALxxx`` code; the catalog lives in
:mod:`repro.analysis.rules` and is documented in ``docs/ANALYSIS.md``.

Suppressions are explicit and per-line: a trailing comment of the form
``# desks: noqa-DAL001`` (or ``# desks: noqa-DAL001,DAL005``) silences
exactly the named codes on that line.  There is deliberately no blanket
``noqa`` — every suppression names the invariant it waives, so a grep for
``desks: noqa`` enumerates every place the project steps around its own
rules.

The engine is stdlib-only and imports nothing from the rest of the
library, so it can lint any tree (including this package) without side
effects.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field, replace
from typing import (TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence,
                    Set, Tuple, Type)

if TYPE_CHECKING:  # pragma: no cover - typing only (runtime import cycle)
    from .graph import ProgramIndex

#: ``# desks: noqa-DAL001`` / ``# desks: noqa-DAL001,DAL002`` (one line).
_NOQA = re.compile(r"#\s*desks:\s*noqa-(DAL\d{3}(?:\s*,\s*DAL\d{3})*)")

_CODE = re.compile(r"DAL\d{3}")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    code: str
    message: str
    path: str
    line: int
    col: int
    snippet: str = ""
    suppressed: bool = False

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (stable key order via sort_keys at dump time)."""
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "snippet": self.snippet,
            "suppressed": self.suppressed,
        }

    def render(self) -> str:
        """``path:line:col: CODE message`` — the human one-liner."""
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.code} {self.message}")


class ModuleContext:
    """Everything a rule may ask about the file under analysis.

    ``module_path`` is the slash-separated path *from the package root*
    (``repro/geometry/angles.py``), so rules can scope themselves to
    packages without caring where the tree is checked out.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.module_path = _module_path(path)

    def in_package(self, *packages: str) -> bool:
        """True when the module lives under any of ``packages``.

        Packages are slash paths relative to the ``repro`` package root,
        e.g. ``in_package("geometry", "storage")``; a full filename such
        as ``core/persistence.py`` matches exactly that module.
        """
        for package in packages:
            prefix = f"repro/{package}"
            if self.module_path == prefix or \
                    self.module_path.startswith(prefix.rstrip("/") + "/"):
                return True
        return False

    def line_text(self, lineno: int) -> str:
        """The 1-based source line, or empty when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def _module_path(path: str) -> str:
    """``.../src/repro/core/index.py`` -> ``repro/core/index.py``."""
    parts = path.replace(os.sep, "/").split("/")
    for i, part in enumerate(parts):
        if part == "repro":
            return "/".join(parts[i:])
    return "/".join(parts)


class RuleVisitor(ast.NodeVisitor):
    """Base class for lint rules: one visitor instance per (rule, file).

    Subclasses set the class attributes and call :meth:`emit` from their
    ``visit_*`` methods.  ``rationale`` ties the rule to the invariant it
    protects (paper lemma, WAL protocol, ...) and feeds the rule catalog
    in ``docs/ANALYSIS.md``.
    """

    code: str = ""
    summary: str = ""
    rationale: str = ""
    #: Optional architecture contract (set by the engine when it was
    #: constructed with one); contract-driven rules fall back to the
    #: packaged default when this stays ``None``.
    contract: Optional[object] = None

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.findings: List[Finding] = []

    def emit(self, node: ast.AST, message: str) -> None:
        """Record a finding at ``node``'s location."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        self.findings.append(Finding(
            code=self.code, message=message, path=self.ctx.path,
            line=line, col=col,
            snippet=self.ctx.line_text(line).strip()))

    def run(self) -> List[Finding]:
        """Visit the whole module and return this rule's findings."""
        self.visit(self.ctx.tree)
        return self.findings


class ProgramRule:
    """Base class for whole-program (interprocedural) rules.

    Where a :class:`RuleVisitor` sees one file, a program rule sees the
    entire parsed tree at once (a :class:`~repro.analysis.graph.
    ProgramIndex`) and may follow imports and calls across modules.  The
    engine runs each program rule exactly once per :meth:`LintEngine.
    check` invocation, after the per-file rules, and applies the same
    per-line ``# desks: noqa-DALxxx`` suppressions to its findings.
    """

    code: str = ""
    summary: str = ""
    rationale: str = ""
    #: Optional architecture contract, same semantics as
    #: :attr:`RuleVisitor.contract`.
    contract: Optional[object] = None

    def check(self, program: "ProgramIndex") -> List[Finding]:
        """Analyse the whole program; return findings (any order)."""
        raise NotImplementedError


@dataclass
class LintReport:
    """Every finding from one engine run, plus what was scanned."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no active finding (suppressions don't count) and no
        file failed to parse."""
        return not self.findings and not self.errors

    def counts_by_code(self) -> Dict[str, int]:
        """Active findings per rule code."""
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready report (the CI artifact format)."""
        return {
            "files_checked": self.files_checked,
            "clean": self.clean,
            "counts": self.counts_by_code(),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "errors": [{"path": p, "error": e} for p, e in self.errors],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The report as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render(self) -> str:
        """Human output: one line per finding plus a summary line."""
        lines = [f.render() for f in self.findings]
        for path, error in self.errors:
            lines.append(f"{path}:0:0: PARSE {error}")
        state = ("clean" if self.clean
                 else f"{len(self.findings)} finding(s)")
        suppressed = (f", {len(self.suppressed)} suppressed"
                      if self.suppressed else "")
        lines.append(f"checked {self.files_checked} file(s): "
                     f"{state}{suppressed}")
        return "\n".join(lines)


class LintEngine:
    """Runs per-file and whole-program rules over files or trees."""

    def __init__(self,
                 rules: Optional[Sequence[Type[RuleVisitor]]] = None,
                 program_rules: Optional[Sequence[Type[ProgramRule]]] = None,
                 contract: Optional[object] = None) -> None:
        if rules is None:
            from .rules import ALL_RULES, PROGRAM_RULES
            rules = ALL_RULES
            if program_rules is None:
                program_rules = PROGRAM_RULES
        self.rules: List[Type[RuleVisitor]] = list(rules)
        self.program_rules: List[Type[ProgramRule]] = list(
            program_rules or ())
        self.contract = contract

    # -- discovery -----------------------------------------------------------

    @staticmethod
    def discover(target: str) -> List[str]:
        """Python files under ``target`` (a file or a directory), sorted."""
        if os.path.isfile(target):
            return [target]
        out: List[str] = []
        for dirpath, dirnames, filenames in os.walk(target):
            dirnames[:] = sorted(
                d for d in dirnames
                if d != "__pycache__" and not d.endswith(".egg-info"))
            out.extend(os.path.join(dirpath, f)
                       for f in sorted(filenames) if f.endswith(".py"))
        return out

    # -- execution -----------------------------------------------------------

    def check_source(self, source: str, path: str = "<string>",
                     ) -> List[Finding]:
        """Lint one in-memory module; returns active + suppressed findings
        (suppressed ones carry ``suppressed=True``).

        Program rules run too, over a single-module program — their
        cross-module facets simply see no other modules.
        """
        tree = ast.parse(source, filename=path)
        findings = self._run_file_rules(ModuleContext(path, source, tree))
        if self.program_rules:
            from .graph import ProgramIndex
            program = ProgramIndex.from_sources([(path, source, tree)])
            findings.extend(self._run_program_rules(program))
        findings = self._apply_noqa(findings, {path: _noqa_lines(source)})
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
        return findings

    def check(self, targets: Iterable[str]) -> LintReport:
        """Lint every python file under each target path.

        Per-file rules run per module; program rules run once over the
        whole parsed set, so interprocedural facts (call chains, the
        import graph) span every target.
        """
        report = LintReport()
        parsed: List[Tuple[str, str, ast.Module]] = []
        noqa_by_path: Dict[str, Dict[int, Set[str]]] = {}
        for target in targets:
            for path in self.discover(target):
                report.files_checked += 1
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        source = handle.read()
                    tree = ast.parse(source, filename=path)
                except (SyntaxError, OSError) as exc:
                    report.errors.append((path, str(exc)))
                    continue
                parsed.append((path, source, tree))
                noqa_by_path[path] = _noqa_lines(source)
        findings: List[Finding] = []
        for path, source, tree in parsed:
            findings.extend(
                self._run_file_rules(ModuleContext(path, source, tree)))
        if self.program_rules and parsed:
            from .graph import ProgramIndex
            findings.extend(
                self._run_program_rules(ProgramIndex.from_sources(parsed)))
        for finding in self._apply_noqa(findings, noqa_by_path):
            (report.suppressed if finding.suppressed
             else report.findings).append(finding)
        report.findings.sort(key=_finding_key)
        report.suppressed.sort(key=_finding_key)
        return report

    # -- internals -----------------------------------------------------------

    def _run_file_rules(self, ctx: ModuleContext) -> List[Finding]:
        out: List[Finding] = []
        for rule in self.rules:
            visitor = rule(ctx)
            if self.contract is not None:
                visitor.contract = self.contract
            out.extend(visitor.run())
        return out

    def _run_program_rules(self,
                           program: "ProgramIndex") -> List[Finding]:
        out: List[Finding] = []
        for rule_cls in self.program_rules:
            rule = rule_cls()
            if self.contract is not None:
                rule.contract = self.contract
            out.extend(rule.check(program))
        return out

    @staticmethod
    def _apply_noqa(findings: List[Finding],
                    noqa_by_path: Dict[str, Dict[int, Set[str]]],
                    ) -> List[Finding]:
        out: List[Finding] = []
        for finding in findings:
            codes = noqa_by_path.get(finding.path, {}).get(
                finding.line, set())
            if finding.code in codes and not finding.suppressed:
                finding = replace(finding, suppressed=True)
            out.append(finding)
        return out


def _finding_key(finding: Finding) -> Tuple[str, int, int, str]:
    """Deterministic report order: path, line, col, code."""
    return (finding.path, finding.line, finding.col, finding.code)


def _noqa_lines(source: str) -> Dict[int, Set[str]]:
    """Map of 1-based line number -> codes suppressed on that line."""
    out: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(line)
        if match:
            out[lineno] = set(_CODE.findall(match.group(1)))
    return out
