"""repro.lang: the DESKS query language (DQL).

One sentence instead of one API call::

    SELECT 5 NEAR (320.0, 240.0) HEADING [0.5, 1.8] MATCHING 'cafe sushi'
        MODE RD WITHIN 50.0 TIMEOUT 200

The package layers exactly like a small database front end:

* :mod:`~repro.lang.lexer` + :mod:`~repro.lang.parser` — statement text
  to a typed logical plan, every failure a positioned
  :class:`DqlSyntaxError`;
* :mod:`~repro.lang.plan` — frozen, validated plans whose canonical
  :meth:`~repro.lang.plan.SelectPlan.render` round-trips through
  :func:`parse` bit-exactly;
* :mod:`~repro.lang.executor` — one seam binding a plan to a local
  index, a query engine, a shard router, or a socket client, always
  returning a :class:`StatementOutcome`.

The language layer is *pure*: it imports only ``geometry``, ``text``,
``core``, and ``trace`` (lint rule DAL008) — backends are passed in,
never constructed here.
"""

from .errors import DqlError, DqlExecutionError, DqlSyntaxError
from .executor import (
    DqlExecutor,
    EngineBackend,
    IndexBackend,
    RouterBackend,
    SocketBackend,
    StatementOutcome,
)
from .lexer import Token, tokenize_statement
from .parser import parse
from .plan import (
    ExplainPlan,
    Plan,
    SelectPlan,
    ShowPlan,
    canonical_keywords,
    plan_from_query,
)

__all__ = [
    "DqlError", "DqlExecutionError", "DqlSyntaxError",
    "Token", "tokenize_statement", "parse",
    "SelectPlan", "ExplainPlan", "ShowPlan", "Plan",
    "canonical_keywords", "plan_from_query",
    "DqlExecutor", "StatementOutcome",
    "IndexBackend", "EngineBackend", "RouterBackend", "SocketBackend",
]
