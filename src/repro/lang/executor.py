"""Bind DQL plans to a backend and execute them uniformly.

The one seam the ISSUE asks for: a :class:`DqlExecutor` takes *any*
backend object and turns every statement form into one
:class:`StatementOutcome` envelope.  Four backend adapters ship here —

* :class:`IndexBackend` — a local :class:`~repro.core.DesksIndex` (or
  mutable index), searched on the calling thread;
* :class:`EngineBackend` — a ``repro.service.QueryEngine`` (cache,
  deadlines, metrics; ``TIMEOUT`` becomes the engine deadline);
* :class:`RouterBackend` — a ``repro.cluster.ShardRouter``
  (scatter-gather; ``SHOW SHARDS`` reports the real layout);
* :class:`SocketBackend` — anything with ``execute_statement(text,
  budget)`` (``repro.net.RemoteShardClient``), shipping the *canonical
  statement text* across the wire;

— but none of them import the serving/cluster/net packages: the adapter
holds whatever object the caller constructed and speaks to it through
its public methods (lint rule DAL008 holds this package to imports of
``geometry``/``text``/``core``/``trace`` only).  That is what lets one
executor run the same statement against an in-process index and a
server across a socket and return bit-identical entries.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core import DesksSearcher, ResultEntry
from ..trace import explain
from .errors import DqlError, DqlExecutionError
from .parser import parse
from .plan import ExplainPlan, Plan, SelectPlan, ShowPlan


@dataclass(frozen=True)
class StatementOutcome:
    """One executed statement, whatever its form or backend.

    ``kind`` is ``"search"`` (a ``SELECT``: ``entries`` holds the
    answers), ``"table"`` (a ``SHOW``: ``table`` holds a flat ``name ->
    float`` map), or ``"text"`` (an ``EXPLAIN``: ``text`` holds the
    report).  ``latency_seconds`` is informational and deliberately
    excluded from :meth:`render`, which must be deterministic for a
    fixed workload so CLI tests can golden-file it.
    """

    statement: str
    kind: str
    backend: str = ""
    entries: Tuple[ResultEntry, ...] = ()
    partial: bool = False
    cached: bool = False
    generation: int = 0
    table: Dict[str, float] = field(default_factory=dict)
    text: str = ""
    latency_seconds: float = 0.0

    def render(self) -> str:
        """Deterministic text form (no timings, no volatile fields)."""
        lines = [f"-- {self.statement}"]
        if self.kind == "search":
            lines.append(f"rows: {len(self.entries)}"
                         + (" (partial)" if self.partial else ""))
            lines.extend(f"  poi={entry.poi_id} distance={entry.distance!r}"
                         for entry in self.entries)
        elif self.kind == "table":
            lines.extend(f"  {name} = {self.table[name]:g}"
                         for name in sorted(self.table))
        else:
            lines.extend(self.text.splitlines())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (includes the volatile fields render omits)."""
        out: Dict[str, Any] = {
            "statement": self.statement,
            "kind": self.kind,
            "backend": self.backend,
            "latency_seconds": self.latency_seconds,
        }
        if self.kind == "search":
            out["rows"] = [{"poi_id": entry.poi_id,
                            "distance": entry.distance}
                           for entry in self.entries]
            out["partial"] = self.partial
            out["cached"] = self.cached
            out["generation"] = self.generation
        elif self.kind == "table":
            out["table"] = dict(sorted(self.table.items()))
        else:
            out["text"] = self.text
        return out


class _TimeLimit:
    """A monotonic-clock deadline satisfying core's ``SupportsExpired``."""

    __slots__ = ("_deadline",)

    def __init__(self, seconds: float) -> None:
        self._deadline = time.monotonic() + seconds

    def expired(self) -> bool:
        """True once the budget has elapsed."""
        return time.monotonic() >= self._deadline


def _combine(*budgets: Optional[float]) -> Optional[float]:
    """The tightest of several optional second budgets."""
    live = [budget for budget in budgets if budget is not None]
    return min(live) if live else None


def _flatten_metrics(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """A ``MetricsRegistry.to_dict`` snapshot as one flat float map."""
    table: Dict[str, float] = {
        "uptime_seconds": float(snapshot.get("uptime_seconds", 0.0))}
    for name, value in snapshot.get("counters", {}).items():
        table[name] = float(value)
    for name, summary in snapshot.get("histograms", {}).items():
        for stat in ("count", "mean", "p50", "p95", "p99", "max"):
            if stat in summary:
                table[f"{name}.{stat}"] = float(summary[stat])
    return table


def _shard_rows(shard_id: int, population: int, mbr) -> Dict[str, float]:
    rows = {f"shard.{shard_id}.pois": float(population)}
    if mbr is not None:
        rows[f"shard.{shard_id}.min_x"] = float(mbr.min_x)
        rows[f"shard.{shard_id}.min_y"] = float(mbr.min_y)
        rows[f"shard.{shard_id}.max_x"] = float(mbr.max_x)
        rows[f"shard.{shard_id}.max_y"] = float(mbr.max_y)
    return rows


class IndexBackend:
    """Plans against a local index, searched on the calling thread.

    ``index`` is a ``DesksIndex`` or ``MutableDesksIndex``; the backend
    honours the plan's ``MODE`` per statement (it owns the search call)
    and implements ``TIMEOUT`` with a local monotonic deadline.
    """

    name = "index"

    def __init__(self, index) -> None:
        self.index = index
        search = getattr(index, "search", None)
        self._search = search if callable(search) \
            else DesksSearcher(index).search

    def select(self, plan: SelectPlan,
               budget: Optional[float] = None) -> StatementOutcome:
        """Run one ``SELECT`` plan; ``budget`` tightens its deadline."""
        limit = _combine(plan.timeout_seconds(), budget)
        deadline = _TimeLimit(limit) if limit is not None else None
        started = time.monotonic()
        result = self._search(plan.query(), mode=plan.mode,
                              deadline=deadline)
        return StatementOutcome(
            statement=plan.render(), kind="search", backend=self.name,
            entries=tuple(result.entries), partial=result.partial,
            generation=int(getattr(self.index, "generation", 0)),
            latency_seconds=time.monotonic() - started)

    def explain(self, plan: ExplainPlan) -> StatementOutcome:
        """Full PR-4 ``explain()``: span tree + exact reconciliation."""
        report = explain(self.index, plan.target.query(),
                         mode=plan.target.mode)
        return StatementOutcome(
            statement=plan.render(), kind="text", backend=self.name,
            text=report.render())

    def show(self, plan: ShowPlan) -> StatementOutcome:
        """Index-level operational state as a flat table."""
        collection = getattr(self.index, "collection", None)
        population = len(collection) if collection is not None else 0
        if plan.target == "SHARDS":
            table = {"shards.total": 1.0}
            table.update(_shard_rows(0, population,
                                     getattr(collection, "mbr", None)))
        else:
            table = {
                "pois": float(population),
                "generation": float(getattr(self.index, "generation", 0)),
            }
            inner = self.index if hasattr(self.index, "num_bands") \
                else getattr(self.index, "index", self.index)
            for attr in ("num_bands", "num_wedges"):
                value = getattr(inner, attr, None)
                if value is not None:
                    table[attr] = float(value)
            io_stats = getattr(self.index, "io_stats", None)
            if io_stats is not None:
                table["physical_reads"] = float(io_stats.physical_reads)
                table["cache_hits"] = float(io_stats.cache_hits)
        return StatementOutcome(statement=plan.render(), kind="table",
                                backend=self.name, table=table)


class EngineBackend:
    """Plans against a ``repro.service.QueryEngine`` (duck-typed).

    ``TIMEOUT`` becomes the engine's cooperative deadline; the engine's
    own pruning mode applies (it is fixed at engine construction — the
    plan's ``MODE`` clause changes effort, never answers, so results are
    unaffected).  ``SHOW METRICS`` flattens the engine's registry.
    """

    name = "engine"

    def __init__(self, engine) -> None:
        self.engine = engine

    def select(self, plan: SelectPlan,
               budget: Optional[float] = None) -> StatementOutcome:
        """Serve one ``SELECT`` through the engine (cache + deadline)."""
        limit = _combine(plan.timeout_seconds(), budget)
        response = self.engine.execute(plan.query(), timeout=limit)
        return StatementOutcome(
            statement=plan.render(), kind="search", backend=self.name,
            entries=tuple(response.result.entries),
            partial=response.result.partial, cached=response.cached,
            generation=response.generation,
            latency_seconds=response.latency_seconds)

    def explain(self, plan: ExplainPlan) -> StatementOutcome:
        """Full ``explain()`` against the engine's underlying index."""
        report = explain(self.engine.index, plan.target.query(),
                         mode=plan.target.mode)
        return StatementOutcome(
            statement=plan.render(), kind="text", backend=self.name,
            text=report.render())

    def show(self, plan: ShowPlan) -> StatementOutcome:
        """Engine metrics, or its index as a single pseudo-shard."""
        if plan.target == "SHARDS":
            collection = getattr(self.engine.index, "collection", None)
            population = len(collection) if collection is not None else 0
            table = {"shards.total": 1.0}
            table.update(_shard_rows(0, population,
                                     getattr(collection, "mbr", None)))
        else:
            table = _flatten_metrics(self.engine.metrics.to_dict())
            table["generation"] = float(self.engine.generation)
        return StatementOutcome(statement=plan.render(), kind="table",
                                backend=self.name, table=table)


class RouterBackend:
    """Plans against a ``repro.cluster.ShardRouter`` (duck-typed).

    ``EXPLAIN`` is plan-only here: the scatter-gather's work happens in
    many shard searches (possibly in other processes), so there is no
    single span tree to reconcile — the report shows the logical plan
    plus the router's pruning/ordering decisions instead.
    """

    name = "router"

    def __init__(self, router) -> None:
        self.router = router

    def select(self, plan: SelectPlan,
               budget: Optional[float] = None) -> StatementOutcome:
        """Scatter-gather one ``SELECT`` across the shards."""
        limit = _combine(plan.timeout_seconds(), budget)
        response = self.router.execute(plan.query(), timeout=limit)
        return StatementOutcome(
            statement=plan.render(), kind="search", backend=self.name,
            entries=tuple(response.result.entries),
            partial=response.result.partial,
            latency_seconds=response.latency_seconds)

    def explain(self, plan: ExplainPlan) -> StatementOutcome:
        """The logical plan plus shard pruning/ordering decisions."""
        target = plan.target
        survivors, keyword_pruned, sector_pruned = \
            self.router.plan(target.query())
        lines = ["cluster plan (no single-search reconciliation across "
                 "shards):"]
        lines.extend(target.describe())
        lines.append(
            f"  shards: total={self.router.num_shards} "
            f"survivors={len(survivors)} "
            f"keyword_pruned={keyword_pruned} "
            f"sector_pruned={sector_pruned}")
        lines.extend(
            f"  dispatch shard={shard.spec.shard_id} "
            f"mindist={mindist:.6f}" for mindist, shard in survivors)
        return StatementOutcome(
            statement=plan.render(), kind="text", backend=self.name,
            text="\n".join(lines))

    def show(self, plan: ShowPlan) -> StatementOutcome:
        """Cluster metrics, or one row-group per shard."""
        if plan.target == "SHARDS":
            table = {"shards.total": float(self.router.num_shards)}
            for shard in self.router.shards:
                spec = shard.spec
                table.update(_shard_rows(spec.shard_id, len(spec),
                                         spec.mbr))
        else:
            table = _flatten_metrics(self.router.metrics.to_dict())
        return StatementOutcome(statement=plan.render(), kind="table",
                                backend=self.name, table=table)


class SocketBackend:
    """Plans shipped as statement text to a remote server.

    ``client`` is anything with ``execute_statement(statement, budget)
    -> result`` where the result carries ``kind`` plus the matching
    payload (``repro.net.RemoteShardClient`` and the decoded
    ``RemoteStatementResult``).  The *server* runs the real executor;
    this adapter only converts the decoded frame back into the uniform
    envelope.
    """

    name = "socket"

    def __init__(self, client) -> None:
        self.client = client

    def _call(self, statement: str,
              budget: Optional[float] = None) -> StatementOutcome:
        remote = self.client.execute_statement(statement, budget)
        if remote.kind == "search":
            search = remote.search
            return StatementOutcome(
                statement=remote.statement, kind="search",
                backend=self.name,
                entries=tuple(search.result.entries),
                partial=search.result.partial, cached=search.cached,
                generation=search.generation,
                latency_seconds=search.server_latency)
        if remote.kind == "table":
            return StatementOutcome(
                statement=remote.statement, kind="table",
                backend=self.name, table=dict(remote.table))
        return StatementOutcome(
            statement=remote.statement, kind="text", backend=self.name,
            text=remote.text)

    def select(self, plan: SelectPlan,
               budget: Optional[float] = None) -> StatementOutcome:
        """Send the canonical ``SELECT`` text; decode the answer."""
        return self._call(plan.render(),
                          _combine(plan.timeout_seconds(), budget))

    def explain(self, plan: ExplainPlan) -> StatementOutcome:
        """Send ``EXPLAIN ...``; the server renders the report."""
        return self._call(plan.render())

    def show(self, plan: ShowPlan) -> StatementOutcome:
        """Send ``SHOW ...``; the server tabulates its own state."""
        return self._call(plan.render())


class DqlExecutor:
    """Parse (when needed) and execute statements against one backend.

    Repeated statement texts hit a bounded prepared-plan cache: plans
    are frozen (and memoize their derived query), so caching the parse
    is safe and turns the serving hot path — the same statements
    arriving over and over — into one dict probe instead of a
    tokenize/parse/validate pass per request (the ``BENCH_lang``
    overhead gate measures exactly this).
    """

    #: Prepared-plan cache bound; old entries evict in insertion order.
    PLAN_CACHE_SIZE = 256

    def __init__(self, backend) -> None:
        self.backend = backend
        self._plans: Dict[str, Plan] = {}
        self._plans_lock = threading.Lock()

    def _plan_of(self, statement: str) -> Plan:
        plan = self._plans.get(statement)
        if plan is None:
            plan = parse(statement)
            with self._plans_lock:
                if len(self._plans) >= self.PLAN_CACHE_SIZE:
                    self._plans.pop(next(iter(self._plans)))
                self._plans[statement] = plan
        return plan

    def execute(self, statement: Union[str, Plan],
                budget: Optional[float] = None) -> StatementOutcome:
        """One statement (text or plan) in, one envelope out.

        Raises :class:`~repro.lang.DqlSyntaxError` for unparseable text
        and :class:`~repro.lang.DqlExecutionError` when the backend
        fails; nothing else escapes.
        """
        plan = self._plan_of(statement) if isinstance(statement, str) \
            else statement
        try:
            if isinstance(plan, SelectPlan):
                outcome = self.backend.select(plan, budget)
                if plan.within is not None:
                    # Inclusive radius cap.  Filtering again on the local
                    # side is idempotent, so a socket backend whose server
                    # already applied it returns unchanged entries.
                    outcome = replace(outcome, entries=tuple(
                        entry for entry in outcome.entries
                        if entry.distance <= plan.within))
            elif isinstance(plan, ExplainPlan):
                outcome = self.backend.explain(plan)
            elif isinstance(plan, ShowPlan):
                outcome = self.backend.show(plan)
            else:
                raise DqlExecutionError(
                    f"not an executable plan: {plan!r}")
        except DqlError:
            raise
        except Exception as exc:
            raise DqlExecutionError(
                f"{type(exc).__name__}: {exc}",
                statement=plan.render()) from exc
        return outcome

    def execute_many(self, statements) -> List[StatementOutcome]:
        """Execute several statements in order (REPL scripts, tests)."""
        return [self.execute(statement) for statement in statements]
