"""Typed logical plans for DQL statements.

A plan is a frozen dataclass describing *what* to run, independent of
*where* it runs (that binding is :mod:`repro.lang.executor`'s job).
Three statement forms, three plan types:

* :class:`SelectPlan` — one direction-aware top-k search (the paper's
  ``q = <(x, y); [alpha, beta]; K; k>`` plus the library's extensions:
  match mode, pruning mode, a radius cap, a deadline);
* :class:`ExplainPlan` — a wrapped :class:`SelectPlan` to be explained
  rather than answered;
* :class:`ShowPlan` — the ``SHOW METRICS`` / ``SHOW SHARDS`` escape
  hatch into the bound backend's operational state.

Validation happens at construction: keywords are canonicalized through
:mod:`repro.text` (the exact normalization POI descriptions get, so a
query keyword can never miss its indexed form), and direction bounds
are validated by building a :class:`~repro.geometry.DirectionInterval`
— the one sanctioned angle-normalization path (lint rule DAL001).

The direction bounds are *stored* exactly as written, not normalized in
place: ``render()`` emits fields via ``repr`` so ``parse(render(plan))``
reproduces every float bit-for-bit, and re-normalizing ``lower + (upper
- lower)`` is not a float identity (it can move ``upper`` by an ulp and
break that round-trip).  Normalization still governs *execution* — the
derived :meth:`SelectPlan.interval` and :meth:`SelectPlan.query` go
through :mod:`repro.geometry` — so two spellings of the same sector
build equal :class:`~repro.core.DirectionalQuery` objects even when
their plans render differently.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from ..core import DirectionalQuery, MatchMode, PruningMode
from ..geometry import DirectionInterval, Point, interval_from_optional
from ..text import keyword_set


def _require_finite(name: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    return value


def canonical_keywords(text_or_keywords: Union[str, Iterable[str]],
                       ) -> Tuple[str, ...]:
    """Canonicalize keywords exactly as POI descriptions are tokenized.

    Accepts a raw description string (``"Sushi & Cafe"``) or an iterable
    of keywords; returns the sorted, deduplicated, lower-cased keyword
    tuple.  Raises ``ValueError`` when nothing usable survives (all
    stop-words, punctuation, or non-ASCII text).
    """
    if isinstance(text_or_keywords, str):
        text = text_or_keywords
    else:
        text = " ".join(str(k) for k in text_or_keywords)
    keywords = keyword_set(text)
    if not keywords:
        raise ValueError(
            f"no usable keywords in {text!r} (keywords are lower-case "
            "ASCII words; stop-words and punctuation are dropped)")
    return tuple(sorted(keywords))


@dataclass(frozen=True)
class SelectPlan:
    """The logical plan of one ``SELECT`` statement."""

    k: int
    x: float
    y: float
    keywords: Tuple[str, ...]
    #: Direction bounds in radians, exactly as written; ``None`` means
    #: no ``HEADING`` clause (full circle).
    alpha: Optional[float] = None
    beta: Optional[float] = None
    match_mode: MatchMode = MatchMode.ALL
    mode: PruningMode = PruningMode.RD
    #: Keep only answers within this distance of the query location.
    within: Optional[float] = None
    #: Cooperative deadline for the bound backend, in milliseconds.
    timeout_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if int(self.k) != self.k or self.k <= 0:
            raise ValueError(f"k must be a positive integer, got {self.k!r}")
        object.__setattr__(self, "k", int(self.k))
        object.__setattr__(self, "x", _require_finite("x", self.x))
        object.__setattr__(self, "y", _require_finite("y", self.y))
        if (self.alpha is None) != (self.beta is None):
            raise ValueError("HEADING needs both alpha and beta bounds")
        if self.alpha is not None and self.beta is not None:
            alpha = _require_finite("alpha", self.alpha)
            beta = _require_finite("beta", self.beta)
            DirectionInterval(alpha, beta)  # validates ordering and width
            object.__setattr__(self, "alpha", alpha)
            object.__setattr__(self, "beta", beta)
        object.__setattr__(self, "keywords",
                           canonical_keywords(self.keywords))
        if not isinstance(self.match_mode, MatchMode):
            raise ValueError(f"bad match mode {self.match_mode!r}")
        if not isinstance(self.mode, PruningMode):
            raise ValueError(f"bad pruning mode {self.mode!r}")
        if self.within is not None:
            within = _require_finite("WITHIN radius", self.within)
            if within <= 0.0:
                raise ValueError(
                    f"WITHIN radius must be positive, got {within!r}")
            object.__setattr__(self, "within", within)
        if self.timeout_ms is not None:
            timeout = _require_finite("TIMEOUT", self.timeout_ms)
            if timeout <= 0.0:
                raise ValueError(
                    f"TIMEOUT must be positive milliseconds, got {timeout!r}")
            object.__setattr__(self, "timeout_ms", timeout)

    # -- derived, normalized forms ------------------------------------------

    def interval(self) -> DirectionInterval:
        """The normalized direction interval (full circle when unset)."""
        return interval_from_optional(self.alpha, self.beta)

    def query(self) -> DirectionalQuery:
        """The executable :class:`~repro.core.DirectionalQuery`.

        Memoized: the plan is frozen, so the derived query is built once
        and shared — on the hot statement path (the executor's plan
        cache) this turns per-request query construction into one
        attribute read.
        """
        memo = self.__dict__.get("_query")
        if memo is None:
            memo = DirectionalQuery(Point(self.x, self.y), self.interval(),
                                    frozenset(self.keywords), self.k,
                                    self.match_mode)
            object.__setattr__(self, "_query", memo)
        return memo

    def timeout_seconds(self) -> Optional[float]:
        """The ``TIMEOUT`` clause in seconds (``None`` when absent)."""
        if self.timeout_ms is None:
            return None
        return self.timeout_ms / 1000.0

    # -- rendering -----------------------------------------------------------

    def render(self) -> str:
        """The canonical statement text; ``parse(render(p)) == p``.

        Fields render via ``repr`` (floats round-trip exactly) and
        default clauses are omitted, so rendering is deterministic: one
        plan, one spelling.  Memoized like :meth:`query` — every
        executed statement's envelope echoes the canonical text, so the
        hot path must not re-format floats per request.
        """
        memo = self.__dict__.get("_render")
        if memo is not None:
            return memo
        parts = [f"SELECT {self.k} NEAR ({self.x!r}, {self.y!r})"]
        if self.alpha is not None:
            parts.append(f"HEADING [{self.alpha!r}, {self.beta!r}]")
        parts.append(f"MATCHING '{' '.join(self.keywords)}'")
        if self.mode is not PruningMode.RD:
            parts.append(f"MODE {self.mode.name}")
        if self.match_mode is not MatchMode.ALL:
            parts.append(f"MATCH {self.match_mode.name}")
        if self.within is not None:
            parts.append(f"WITHIN {self.within!r}")
        if self.timeout_ms is not None:
            parts.append(f"TIMEOUT {self.timeout_ms!r}")
        rendered = " ".join(parts)
        object.__setattr__(self, "_render", rendered)
        return rendered

    def describe(self) -> List[str]:
        """The logical plan tree as indented text lines."""
        interval = self.interval()
        if interval.is_full:
            heading = "full circle"
        else:
            heading = (f"[{interval.lower:.6f}, {interval.upper:.6f}] rad "
                       f"(width {interval.width:.6f})")
        lines = [
            f"select k={self.k} match={self.match_mode.value} "
            f"mode={self.mode.name}",
            f"  location: ({self.x!r}, {self.y!r})",
            f"  heading: {heading}",
            f"  keywords: {' '.join(self.keywords)}",
        ]
        if self.within is not None:
            lines.append(f"  within: {self.within!r}")
        if self.timeout_ms is not None:
            lines.append(f"  timeout: {self.timeout_ms!r} ms")
        for quadrant, piece in self.query().basic_subqueries():
            lines.append(f"  subquery quadrant={quadrant} "
                         f"interval=[{piece.lower:.6f}, {piece.upper:.6f}]")
        return lines

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary of the plan."""
        return {
            "statement": "select",
            "k": self.k,
            "location": [self.x, self.y],
            "heading": (None if self.alpha is None
                        else [self.alpha, self.beta]),
            "keywords": list(self.keywords),
            "match_mode": self.match_mode.value,
            "mode": self.mode.name,
            "within": self.within,
            "timeout_ms": self.timeout_ms,
        }


@dataclass(frozen=True)
class ExplainPlan:
    """``EXPLAIN <select>``: explain the wrapped plan, don't answer it."""

    target: SelectPlan

    def __post_init__(self) -> None:
        if not isinstance(self.target, SelectPlan):
            raise ValueError("EXPLAIN wraps a SELECT statement")

    def render(self) -> str:
        """Canonical statement text."""
        return f"EXPLAIN {self.target.render()}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary."""
        return {"statement": "explain", "target": self.target.to_dict()}


#: Legal ``SHOW`` targets.
SHOW_TARGETS = ("METRICS", "SHARDS")


@dataclass(frozen=True)
class ShowPlan:
    """``SHOW METRICS`` / ``SHOW SHARDS``: operational state escape hatch."""

    target: str = field(default="METRICS")

    def __post_init__(self) -> None:
        target = str(self.target).upper()
        if target not in SHOW_TARGETS:
            raise ValueError(
                f"SHOW target must be one of {', '.join(SHOW_TARGETS)}; "
                f"got {self.target!r}")
        object.__setattr__(self, "target", target)

    def render(self) -> str:
        """Canonical statement text."""
        return f"SHOW {self.target}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary."""
        return {"statement": "show", "target": self.target}


#: Any parsed DQL statement.
Plan = Union[SelectPlan, ExplainPlan, ShowPlan]


def plan_from_query(query: DirectionalQuery,
                    mode: PruningMode = PruningMode.RD,
                    within: Optional[float] = None,
                    timeout_ms: Optional[float] = None) -> SelectPlan:
    """Lift an existing :class:`~repro.core.DirectionalQuery` into a plan.

    The inverse direction of :meth:`SelectPlan.query`: benchmarks and the
    equivalence suite use it to run an API-built workload through the
    language layer verbatim.
    """
    if query.interval.is_full:
        alpha = beta = None
    else:
        alpha, beta = query.interval.lower, query.interval.upper
    return SelectPlan(
        k=query.k, x=query.location.x, y=query.location.y,
        keywords=tuple(sorted(query.keywords)),
        alpha=alpha, beta=beta,
        match_mode=query.match_mode, mode=mode,
        within=within, timeout_ms=timeout_ms)
