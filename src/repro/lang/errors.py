"""Typed, position-annotated errors for the DQL front end.

Every failure mode of :func:`repro.lang.parse` — lexical garbage, a
grammar violation, or a statement that parses but describes an invalid
plan (``SELECT 0 ...``, keywords that canonicalize to nothing) — raises
:class:`DqlSyntaxError` carrying the offending statement and a 0-based
character position, and *nothing else*: the parser robustness suite
feeds random token soup, truncations, and unicode at the parser and
asserts no other exception type ever escapes.

The caret rendering (:meth:`DqlSyntaxError.render`) is what the CLI and
the network servers show; keeping it on the exception means every
surface (REPL, ``-e``, the wire's ``BAD_REQUEST`` payload) reports the
same thing.
"""

from __future__ import annotations

from typing import Optional


class DqlError(ValueError):
    """Base class for every error raised by :mod:`repro.lang`."""


class DqlSyntaxError(DqlError):
    """A DQL statement could not be parsed into a valid plan.

    ``statement`` is the raw input, ``position`` the 0-based character
    offset of the offending token (or of end-of-input for truncations).
    """

    def __init__(self, message: str, statement: str = "",
                 position: int = 0) -> None:
        self.reason = message
        self.statement = statement
        self.position = max(0, min(position, len(statement)))
        super().__init__(f"{message} (at position {self.position})")

    def render(self) -> str:
        """The statement with a caret under the offending position.

        >>> err = DqlSyntaxError("expected NEAR", "SELECT 5 NEATS", 9)
        >>> print(err.render())
        SELECT 5 NEATS
                 ^
        expected NEAR (at position 9)
        """
        lines = []
        if self.statement:
            lines.append(self.statement)
            lines.append(" " * self.position + "^")
        lines.append(str(self))
        return "\n".join(lines)


class DqlExecutionError(DqlError):
    """A valid plan could not be executed by the bound backend.

    Raised by the executor when a statement asks a backend for something
    it cannot provide (e.g. ``SHOW SHARDS`` against a backend with no
    shard layout is fine — it reports the single pseudo-shard — but a
    remote backend relaying a typed server error surfaces it here).
    """

    def __init__(self, message: str,
                 statement: Optional[str] = None) -> None:
        self.statement = statement
        super().__init__(message)
