"""Recursive-descent parser: DQL text to typed logical plans.

The grammar (terminals in caps; ``[...]`` optional; words are
case-insensitive)::

    statement := select | EXPLAIN select | SHOW (METRICS | SHARDS)
    select    := SELECT count NEAR ( number , number )
                 [HEADING [ angle , angle ]]
                 MATCHING string
                 clause*
    clause    := MODE (RD | R | D)
               | MATCH (ALL | ANY)
               | WITHIN number
               | TIMEOUT number
    angle     := number [DEG]

Angles are radians unless suffixed ``DEG``; trailing clauses may appear
in any order but each at most once.  Every failure — lexical, grammar,
or a statement describing an invalid plan — raises a positioned
:class:`~repro.lang.DqlSyntaxError`; no other exception type escapes
:func:`parse` (the fuzz suite holds the parser to that).
"""

from __future__ import annotations

import math
from typing import List, NoReturn, Optional, Tuple

from ..core import MatchMode, PruningMode
from .errors import DqlSyntaxError
from .lexer import END, NUMBER, PUNCT, STRING, WORD, Token, \
    tokenize_statement
from .plan import ExplainPlan, Plan, SelectPlan, ShowPlan

#: Trailing SELECT clauses, in canonical render order.
_CLAUSES = ("MODE", "MATCH", "WITHIN", "TIMEOUT")


class _Parser:
    """One statement's token cursor plus the grammar productions."""

    def __init__(self, statement: str, tokens: List[Token]) -> None:
        self.statement = statement
        self.tokens = tokens
        self.pos = 0

    # -- cursor helpers ------------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind is not END:
            self.pos += 1
        return token

    def fail(self, message: str, token: Optional[Token] = None) -> NoReturn:
        token = token if token is not None else self.peek()
        where = message
        if token.kind is END:
            where += " before end of statement"
        raise DqlSyntaxError(where, self.statement, token.pos)

    def expect_word(self, word: str) -> Token:
        token = self.peek()
        if token.kind is not WORD or token.text != word:
            self.fail(f"expected {word}")
        return self.advance()

    def expect_punct(self, char: str) -> Token:
        token = self.peek()
        if token.kind is not PUNCT or token.text != char:
            self.fail(f"expected '{char}'")
        return self.advance()

    def expect_number(self, what: str) -> Tuple[float, Token]:
        token = self.peek()
        if token.kind is not NUMBER:
            self.fail(f"expected a number ({what})")
        self.advance()
        return token.number, token

    def expect_end(self) -> None:
        token = self.peek()
        if token.kind is not END:
            self.fail("unexpected trailing input")

    # -- productions ---------------------------------------------------------

    def statement_plan(self) -> Plan:
        token = self.peek()
        if token.kind is not WORD:
            self.fail("expected SELECT, EXPLAIN, or SHOW")
        if token.text == "SELECT":
            plan = self.select()
        elif token.text == "EXPLAIN":
            self.advance()
            start = self.peek()
            if not (start.kind is WORD and start.text == "SELECT"):
                self.fail("EXPLAIN expects a SELECT statement")
            plan = ExplainPlan(self.select())
        elif token.text == "SHOW":
            plan = self.show()
        else:
            self.fail("expected SELECT, EXPLAIN, or SHOW")
        self.expect_end()
        return plan

    def select(self) -> SelectPlan:
        keyword = self.expect_word("SELECT")
        k, k_token = self.expect_number("the result count k")
        self.expect_word("NEAR")
        self.expect_punct("(")
        x, _ = self.expect_number("the x coordinate")
        self.expect_punct(",")
        y, _ = self.expect_number("the y coordinate")
        self.expect_punct(")")

        alpha: Optional[float] = None
        beta: Optional[float] = None
        heading_token: Optional[Token] = None
        token = self.peek()
        if token.kind is WORD and token.text == "HEADING":
            heading_token = self.advance()
            self.expect_punct("[")
            alpha = self.angle("the lower direction bound")
            self.expect_punct(",")
            beta = self.angle("the upper direction bound")
            self.expect_punct("]")

        self.expect_word("MATCHING")
        keywords_token = self.peek()
        if keywords_token.kind is not STRING:
            self.fail("expected a quoted keyword string")
        self.advance()

        mode: Optional[PruningMode] = None
        match_mode: Optional[MatchMode] = None
        within: Optional[float] = None
        within_token: Optional[Token] = None
        timeout_ms: Optional[float] = None
        timeout_token: Optional[Token] = None
        seen = set()
        while True:
            token = self.peek()
            if token.kind is not WORD or token.text not in _CLAUSES:
                break
            if token.text in seen:
                self.fail(f"duplicate {token.text} clause")
            seen.add(token.text)
            self.advance()
            if token.text == "MODE":
                mode = self.enum_word(PruningMode, "MODE expects RD, R, or D")
            elif token.text == "MATCH":
                match_mode = self.enum_word(
                    MatchMode, "MATCH expects ALL or ANY")
            elif token.text == "WITHIN":
                within, within_token = self.expect_number("the radius")
            else:
                timeout_ms, timeout_token = self.expect_number(
                    "the deadline in milliseconds")

        # Plan validation errors are positioned at the token that carried
        # the offending value, so the caret lands on the cause.
        blame = {
            "keyword": keywords_token,
            "alpha": heading_token, "beta": heading_token,
            "HEADING": heading_token, "interval": heading_token,
            "WITHIN": within_token, "TIMEOUT": timeout_token,
            "k must": k_token,
        }
        try:
            return SelectPlan(
                k=_int_count(k, k_token, self.statement),
                x=x, y=y,
                keywords=(keywords_token.text,),
                alpha=alpha, beta=beta,
                match_mode=match_mode or MatchMode.ALL,
                mode=mode or PruningMode.RD,
                within=within, timeout_ms=timeout_ms)
        except DqlSyntaxError:
            raise
        except ValueError as exc:
            token = keyword
            for marker, candidate in blame.items():
                if candidate is not None and marker in str(exc):
                    token = candidate
                    break
            raise DqlSyntaxError(str(exc), self.statement,
                                 token.pos) from None

    def angle(self, what: str) -> float:
        """A number with an optional ``DEG`` suffix, in radians."""
        value, _ = self.expect_number(what)
        token = self.peek()
        if token.kind is WORD and token.text == "DEG":
            self.advance()
            return math.radians(value)
        return value

    def enum_word(self, enum_type, message: str):
        """A WORD token naming a member of ``enum_type``."""
        token = self.peek()
        if token.kind is WORD:
            for member in enum_type:
                if token.text == member.name.upper():
                    self.advance()
                    return member
        self.fail(message)

    def show(self) -> ShowPlan:
        self.expect_word("SHOW")
        token = self.peek()
        if token.kind is not WORD:
            self.fail("SHOW expects METRICS or SHARDS")
        try:
            plan = ShowPlan(token.text)
        except ValueError:
            self.fail("SHOW expects METRICS or SHARDS")
        self.advance()
        return plan


def _int_count(value: float, token: Token, statement: str) -> int:
    # Range check first: it is False for inf/nan, so int(value) below
    # can never overflow (the fuzz corpus's `SELECT 1e500 ...`).
    if not (1 <= value <= 10**9) or value != int(value):
        raise DqlSyntaxError(
            f"k must be a positive integer, got {token.text}",
            statement, token.pos)
    return int(value)


def parse(statement: str) -> Plan:
    """Parse one DQL statement into its typed logical plan.

    Raises :class:`~repro.lang.DqlSyntaxError` — positioned at the
    offending character — for anything that is not a valid statement.
    """
    if not isinstance(statement, str):
        raise DqlSyntaxError(
            f"statement must be a string, got {type(statement).__name__}")
    tokens = tokenize_statement(statement)
    if tokens[0].kind is END:
        raise DqlSyntaxError("empty statement", statement, 0)
    return _Parser(statement, tokens).statement_plan()
