"""Hand-rolled tokenizer for DQL statements.

The token stream is deliberately tiny — bare words, numbers, quoted
strings, and four bits of punctuation — and every token carries the
0-based character position it started at, so the parser (and the plan
validator behind it) can point at the exact offending character when it
raises :class:`~repro.lang.DqlSyntaxError`.

Bare words are case-insensitive: ``select``, ``Select`` and ``SELECT``
produce the same ``WORD`` token text (upper-cased).  Quoted strings keep
their contents verbatim (keyword canonicalization happens in the plan
layer, via :mod:`repro.text`, not here).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from .errors import DqlSyntaxError

#: Token kinds produced by :func:`tokenize_statement`.
WORD = "WORD"
NUMBER = "NUMBER"
STRING = "STRING"
PUNCT = "PUNCT"
END = "END"

_WS = re.compile(r"\s+")
#: Numbers accept everything ``repr(float)`` emits for finite values
#: (``10``, ``-3.5``, ``1e-05``, ``6.283185307179586``) so that a
#: rendered plan always re-lexes exactly.
_NUMBER = re.compile(r"[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?")
#: Bare words are ASCII identifiers; anything fancier belongs in quotes.
_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

_PUNCTUATION = "()[],"


@dataclass(frozen=True)
class Token:
    """One lexical unit: kind, source text, and start position."""

    kind: str
    text: str
    pos: int

    @property
    def number(self) -> float:
        """The numeric value of a ``NUMBER`` token."""
        return float(self.text)


def tokenize_statement(statement: str) -> List[Token]:
    """Split ``statement`` into tokens, ending with one ``END`` token.

    Raises :class:`~repro.lang.DqlSyntaxError` (never anything else) on
    characters outside the language — an unterminated quote, a stray
    ``;``, or any non-ASCII byte outside a quoted string.
    """
    tokens: List[Token] = []
    pos = 0
    length = len(statement)
    while pos < length:
        ws = _WS.match(statement, pos)
        if ws:
            pos = ws.end()
            continue
        char = statement[pos]
        if char in _PUNCTUATION:
            tokens.append(Token(PUNCT, char, pos))
            pos += 1
            continue
        if char in "'\"":
            closing = statement.find(char, pos + 1)
            if closing < 0:
                raise DqlSyntaxError("unterminated string literal",
                                     statement, pos)
            tokens.append(Token(STRING, statement[pos + 1:closing], pos))
            pos = closing + 1
            continue
        number = _NUMBER.match(statement, pos)
        if number and not _WORD.match(statement, pos):
            # A word match wins so `e5` lexes as a word, not an exponent
            # fragment; a leading digit always means a number.
            tokens.append(Token(NUMBER, number.group(), pos))
            pos = number.end()
            continue
        word = _WORD.match(statement, pos)
        if word:
            tokens.append(Token(WORD, word.group().upper(), pos))
            pos = word.end()
            continue
        raise DqlSyntaxError(f"unexpected character {char!r}",
                             statement, pos)
    tokens.append(Token(END, "", length))
    return tokens
