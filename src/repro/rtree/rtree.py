"""A from-scratch R-tree over point objects.

Two construction paths:

* :meth:`RTree.bulk_load` — Sort-Tile-Recursive packing, the standard way to
  build a well-clustered tree from a static dataset (what the paper's
  baselines do for their POI collections);
* :meth:`RTree.insert` — Guttman insertion with quadratic split, for
  completeness and for tests that exercise dynamic behaviour.

The fanout default (50) mirrors a 4 KiB disk page of entries, matching the
disk-based framing of the paper's evaluation.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

from ..geometry import MBR, Point
from .node import Entry, Node, child_entry, leaf_entry

DEFAULT_FANOUT = 50


class RTree:
    """R-tree over ``(point, object_id)`` pairs."""

    def __init__(self, fanout: int = DEFAULT_FANOUT) -> None:
        if fanout < 4:
            raise ValueError(f"fanout must be at least 4, got {fanout}")
        self.fanout = fanout
        self.min_fill = max(2, fanout // 3)
        self._next_node_id = 0
        self.root: Node = self._new_node(is_leaf=True)
        self.size = 0
        self.height = 1

    # -- construction ------------------------------------------------------

    @classmethod
    def bulk_load(cls, items: Sequence[Tuple[Point, int]],
                  fanout: int = DEFAULT_FANOUT) -> "RTree":
        """Build a packed tree with Sort-Tile-Recursive loading."""
        tree = cls(fanout)
        if not items:
            return tree
        leaves: List[Node] = []
        for chunk in _str_tiles([(p, oid) for p, oid in items], fanout):
            node = tree._new_node(is_leaf=True)
            node.entries = [leaf_entry(p, oid) for p, oid in chunk]
            leaves.append(node)
        level: List[Node] = leaves
        height = 1
        while len(level) > 1:
            parents: List[Node] = []
            centers = [(n.mbr().center(), n) for n in level]
            for chunk in _str_tiles(centers, fanout):
                parent = tree._new_node(is_leaf=False)
                parent.entries = [child_entry(n) for _, n in chunk]
                parents.append(parent)
            level = parents
            height += 1
        tree.root = level[0]
        tree.size = len(items)
        tree.height = height
        return tree

    def insert(self, point: Point, object_id: int) -> None:
        """Insert one object (Guttman: choose-leaf, split, adjust upward)."""
        entry = leaf_entry(point, object_id)
        split = self._insert_entry(self.root, entry, depth=1,
                                   target_depth=self.height)
        if split is not None:
            old_root = self.root
            self.root = self._new_node(is_leaf=False)
            self.root.entries = [child_entry(old_root), child_entry(split)]
            self.height += 1
        self.size += 1

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return self.size

    def range_query(self, window: MBR) -> List[int]:
        """Ids of all objects whose point lies inside ``window``."""
        out: List[int] = []
        if self.size == 0:
            return out
        stack = [self.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if not window.intersects(entry.mbr):
                    continue
                if node.is_leaf:
                    out.append(entry.child)
                else:
                    stack.append(entry.child)
        return out

    def all_object_ids(self) -> List[int]:
        """Every object id in the tree (tree-order)."""
        if self.size == 0:
            return []
        out: List[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            for entry in node.entries:
                if node.is_leaf:
                    out.append(entry.child)
                else:
                    stack.append(entry.child)
        return out

    def iter_nodes(self) -> Iterator[Node]:
        """All nodes, parents before children."""
        if self.size == 0:
            return
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                for entry in node.entries:
                    stack.append(entry.child)

    @property
    def num_nodes(self) -> int:
        """Total node count (for index-size reporting)."""
        return sum(1 for _ in self.iter_nodes())

    def check_invariants(self) -> None:
        """Validate MBR containment and leaf depth; raises on violation."""
        if self.size == 0:
            return
        depths = set()
        stack: List[Tuple[Node, Optional[MBR], int]] = [(self.root, None, 1)]
        while stack:
            node, parent_mbr, depth = stack.pop()
            if not node.entries:
                raise AssertionError(f"empty node #{node.node_id}")
            box = node.mbr()
            if parent_mbr is not None and not parent_mbr.contains_mbr(box):
                raise AssertionError(
                    f"node #{node.node_id} leaks outside its parent entry")
            if node.is_leaf:
                depths.add(depth)
            else:
                for entry in node.entries:
                    if entry.is_leaf_entry:
                        raise AssertionError(
                            f"object entry inside internal node "
                            f"#{node.node_id}")
                    stack.append((entry.child, entry.mbr, depth + 1))
        if len(depths) != 1:
            raise AssertionError(f"leaves at multiple depths: {depths}")

    # -- internals -----------------------------------------------------------

    def _new_node(self, is_leaf: bool) -> Node:
        node = Node(self._next_node_id, is_leaf)
        self._next_node_id += 1
        return node

    def _insert_entry(self, node: Node, entry: Entry, depth: int,
                      target_depth: int) -> Optional[Node]:
        """Recursive insert; returns a split sibling when the node split."""
        if depth == target_depth:
            node.entries.append(entry)
        else:
            best = self._choose_subtree(node, entry.mbr)
            split = self._insert_entry(best.child, entry, depth + 1,
                                       target_depth)
            best.mbr = best.child.mbr()
            if split is not None:
                node.entries.append(child_entry(split))
        if len(node.entries) > self.fanout:
            return self._split(node)
        return None

    @staticmethod
    def _choose_subtree(node: Node, mbr: MBR) -> Entry:
        """Entry needing least enlargement (area as tiebreak)."""
        return min(
            node.entries,
            key=lambda e: (e.mbr.enlargement(mbr), e.mbr.area()))

    def _split(self, node: Node) -> Node:
        """Guttman quadratic split; mutates ``node``, returns its sibling."""
        entries = node.entries
        seed_a, seed_b = _quadratic_seeds(entries)
        group_a = [entries[seed_a]]
        group_b = [entries[seed_b]]
        box_a = entries[seed_a].mbr
        box_b = entries[seed_b].mbr
        rest = [e for i, e in enumerate(entries) if i not in (seed_a, seed_b)]
        while rest:
            # Force-assign when one group must take everything left to
            # reach minimum fill.
            if len(group_a) + len(rest) <= self.min_fill:
                group_a.extend(rest)
                box_a = MBR.union_all([box_a] + [e.mbr for e in rest])
                break
            if len(group_b) + len(rest) <= self.min_fill:
                group_b.extend(rest)
                box_b = MBR.union_all([box_b] + [e.mbr for e in rest])
                break
            pick_i, prefer_a = _pick_next(rest, box_a, box_b)
            entry = rest.pop(pick_i)
            if prefer_a:
                group_a.append(entry)
                box_a = box_a.union(entry.mbr)
            else:
                group_b.append(entry)
                box_b = box_b.union(entry.mbr)
        node.entries = group_a
        sibling = self._new_node(is_leaf=node.is_leaf)
        sibling.entries = group_b
        return sibling


def _quadratic_seeds(entries: Sequence[Entry]) -> Tuple[int, int]:
    """The pair wasting the most area when grouped together."""
    worst = -math.inf
    seeds = (0, 1)
    for i in range(len(entries)):
        for j in range(i + 1, len(entries)):
            waste = (entries[i].mbr.union(entries[j].mbr).area()
                     - entries[i].mbr.area() - entries[j].mbr.area())
            if waste > worst:
                worst = waste
                seeds = (i, j)
    return seeds


def _pick_next(rest: Sequence[Entry], box_a: MBR, box_b: MBR,
               ) -> Tuple[int, bool]:
    """Entry with the strongest group preference, and that preference."""
    best_i = 0
    best_diff = -1.0
    prefer_a = True
    for i, entry in enumerate(rest):
        grow_a = box_a.enlargement(entry.mbr)
        grow_b = box_b.enlargement(entry.mbr)
        diff = abs(grow_a - grow_b)
        if diff > best_diff:
            best_diff = diff
            best_i = i
            prefer_a = grow_a < grow_b
    return best_i, prefer_a


def _str_tiles(items: List, fanout: int) -> Iterator[List]:
    """Sort-Tile-Recursive partitioning of ``(point-like, payload)`` pairs.

    Sorts by x into vertical slices of ``ceil(sqrt(n/fanout))`` tiles, then
    each slice by y into fanout-sized runs.
    """
    n = len(items)
    if n <= fanout:
        yield list(items)
        return
    num_leaves = math.ceil(n / fanout)
    num_slices = math.ceil(math.sqrt(num_leaves))
    per_slice = math.ceil(n / num_slices)
    by_x = sorted(items, key=lambda it: (it[0].x, it[0].y))
    for s in range(0, n, per_slice):
        chunk = sorted(by_x[s:s + per_slice],
                       key=lambda it: (it[0].y, it[0].x))
        for t in range(0, len(chunk), fanout):
            yield chunk[t:t + fanout]
