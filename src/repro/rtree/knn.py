"""Best-first nearest-neighbour search over an R-tree.

This is the distance-browsing algorithm of Hjaltason & Samet [10]: a single
priority queue holds both nodes (keyed by ``MINDIST`` to the query) and
objects (keyed by exact distance); popping an object yields it as the next
nearest.  The incremental form is exactly what the paper's filter-and-verify
baseline needs — it keeps drawing candidates in distance order until ``k``
of them survive the keyword and direction checks.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, List, Optional, Tuple

from ..geometry import Point
from ..storage import SearchStats
from .node import Neighbor, Node
from .rtree import RTree

#: Optional filter applied to internal/leaf nodes during descent; returning
#: False prunes the whole subtree.  Baselines hook textual pruning in here.
NodeFilter = Callable[[Node], bool]

#: Optional filter applied to object entries; returning False skips the
#: object before it is ever scored.
ObjectFilter = Callable[[int], bool]


def incremental_nearest(
    tree: RTree,
    query: Point,
    node_filter: Optional[NodeFilter] = None,
    object_filter: Optional[ObjectFilter] = None,
    stats: Optional[SearchStats] = None,
) -> Iterator[Neighbor]:
    """Yield objects in non-decreasing distance from ``query``.

    ``node_filter``/``object_filter`` prune subtrees/objects (textual
    pruning in the baselines); ``stats`` accumulates node/POI counters.
    """
    if len(tree) == 0:
        return
    counter = 0  # heap tiebreak: FIFO among equal distances
    heap: List[Tuple[float, int, object]] = []

    def push_node(node: Node) -> None:
        nonlocal counter
        heapq.heappush(heap, (node.mbr().min_distance_to_point(query),
                              counter, node))
        counter += 1

    push_node(tree.root)
    while heap:
        distance, _, item = heapq.heappop(heap)
        if isinstance(item, Neighbor):
            yield item
            continue
        node: Node = item
        if stats is not None:
            stats.nodes_examined += 1
        if node_filter is not None and not node_filter(node):
            continue
        for entry in node.entries:
            if node.is_leaf:
                object_id = entry.child
                if object_filter is not None and not object_filter(object_id):
                    continue
                if stats is not None:
                    stats.pois_examined += 1
                    stats.distance_computations += 1
                exact = entry.mbr.min_distance_to_point(query)
                heapq.heappush(
                    heap, (exact, counter, Neighbor(object_id, exact)))
            else:
                child = entry.child
                if node_filter is not None and not node_filter(child):
                    continue
                heapq.heappush(
                    heap,
                    (entry.mbr.min_distance_to_point(query), counter, child))
            counter += 1


def knn(tree: RTree, query: Point, k: int,
        node_filter: Optional[NodeFilter] = None,
        object_filter: Optional[ObjectFilter] = None,
        stats: Optional[SearchStats] = None) -> List[Neighbor]:
    """The ``k`` nearest objects passing the filters, nearest first."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    out: List[Neighbor] = []
    for neighbor in incremental_nearest(tree, query, node_filter,
                                        object_filter, stats):
        out.append(neighbor)
        if len(out) == k:
            break
    return out
