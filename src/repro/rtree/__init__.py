"""From-scratch R-tree: STR bulk load, Guttman insert, best-first kNN."""

from .knn import incremental_nearest, knn
from .node import Entry, Neighbor, Node, child_entry, format_tree, leaf_entry
from .rtree import DEFAULT_FANOUT, RTree

__all__ = [
    "DEFAULT_FANOUT",
    "Entry",
    "Neighbor",
    "Node",
    "RTree",
    "child_entry",
    "format_tree",
    "incremental_nearest",
    "knn",
    "leaf_entry",
]
