"""R-tree nodes and entries.

The structure follows Guttman's original design: internal nodes hold
``(mbr, child-node)`` entries, leaves hold ``(mbr, object-id)`` entries.
Nodes carry a stable ``node_id`` so the keyword-augmented baselines
(MIR2-tree signatures, IR-tree inverted files) can attach per-node textual
summaries in side tables without subclassing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..geometry import MBR, Point


@dataclass
class Entry:
    """One slot in a node: a rectangle plus either a child node or an id."""

    mbr: MBR
    child: Union["Node", int]

    @property
    def is_leaf_entry(self) -> bool:
        return not isinstance(self.child, Node)


@dataclass
class Node:
    """An R-tree node; ``is_leaf`` governs what entries hold."""

    node_id: int
    is_leaf: bool
    entries: List[Entry] = field(default_factory=list)

    def mbr(self) -> MBR:
        """Tight bounding rectangle of all entries."""
        if not self.entries:
            raise ValueError(f"node {self.node_id} has no entries")
        return MBR.union_all([e.mbr for e in self.entries])

    def __len__(self) -> int:
        return len(self.entries)


def leaf_entry(point: Point, object_id: int) -> Entry:
    """A leaf entry for a point object."""
    return Entry(MBR.of_point(point), object_id)


def child_entry(node: Node) -> Entry:
    """An internal entry wrapping ``node`` with its tight MBR."""
    return Entry(node.mbr(), node)


@dataclass(frozen=True)
class Neighbor:
    """One kNN result: object id and its distance to the query."""

    object_id: int
    distance: float

    def __lt__(self, other: "Neighbor") -> bool:
        return (self.distance, self.object_id) < (other.distance,
                                                  other.object_id)


def format_tree(node: Node, depth: int = 0,
                max_depth: Optional[int] = None) -> str:
    """Readable dump of a subtree, for debugging and doc examples."""
    pad = "  " * depth
    kind = "leaf" if node.is_leaf else "node"
    lines = [f"{pad}{kind}#{node.node_id} [{len(node.entries)} entries] "
             f"{node.mbr()}"]
    if max_depth is not None and depth >= max_depth:
        return "\n".join(lines)
    for entry in node.entries:
        if entry.is_leaf_entry:
            lines.append(f"{pad}  obj#{entry.child} @ {entry.mbr}")
        else:
            lines.append(format_tree(entry.child, depth + 1, max_depth))
    return "\n".join(lines)
