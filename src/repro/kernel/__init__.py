"""Columnar batch kernel: struct-of-arrays search over a frozen index.

``ColumnarSnapshot`` compiles a :class:`~repro.core.index.DesksIndex`
into parallel numpy arrays (one image per anchor corner);
``ColumnarSearcher`` runs the paper's band/wedge scan over those arrays,
verifying whole wedges at a time instead of one POI object at a time,
and exposes ``search_batch`` to amortise plan construction across many
queries.  Results, pruning counters, and traces are bit-identical to
:class:`~repro.core.search.DesksSearcher` — see ``docs/KERNEL.md`` for
the memory layout and the equivalence argument.
"""

from .snapshot import AnchorColumns, ColumnarSnapshot, TermColumns
from .search import ColumnarSearcher

__all__ = [
    "AnchorColumns",
    "ColumnarSearcher",
    "ColumnarSnapshot",
    "TermColumns",
]
