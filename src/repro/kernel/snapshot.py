"""The frozen columnar image of a DesksIndex.

The object-path index stores POIs behind keyword stores and per-POI
``Point`` objects; the hot loop pays one attribute walk per POI.  The
snapshot lays the same data out as parallel arrays, position-indexed by
each anchor's ``poi_order`` (band-major, direction-sorted — the paper's
``LP_k`` sort key), so one wedge of one band is one contiguous slice
everywhere:

========================  =======  ==============================================
array                     dtype    invariant
========================  =======  ==============================================
``AnchorColumns.xs``      float64  world x of the POI at each position
``AnchorColumns.ys``      float64  world y of the POI at each position
``AnchorColumns.poi_ids`` int64    ``poi_order`` itself: position -> POI id
``AnchorColumns.sub_starts`` int64 ``num_subregions + 1`` slice bounds; wedge
                                   ``gid`` spans ``[sub_starts[gid],
                                   sub_starts[gid + 1])``
``TermColumns.positions`` int64    sorted positions of the keyword's POIs (the
                                   id runs: contiguous per wedge by construction)
``TermColumns.region_gids`` int64  sorted unique wedge gids containing the term
========================  =======  ==============================================

Coordinates are **world** coordinates, not canonical-frame ones, so the
kernel's ``xs[pos] - q.x`` is the same IEEE subtraction the object path
performs in ``Point.distance_to`` / ``direction_to`` — the root of the
bit-exactness guarantee.  Geometry that is already cheap and shared
(``bands``, ``subregions``, ``candidate_wedge_range``) is referenced
from the existing :class:`~repro.core.regions.AnchorRegions`, not
copied.

The snapshot is frozen: it images the index at compile time and never
observes later mutations, which is why the service layer refuses to
pair it with a ``MutableDesksIndex``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.index import DesksIndex
from ..core.regions import AnchorRegions
from ..geometry import CanonicalFrame


@dataclass(frozen=True)
class TermColumns:
    """One keyword's id runs inside one anchor's positional layout."""

    #: Sorted positions (into ``poi_order``) of the POIs carrying the term.
    positions: "np.ndarray"
    #: Sorted unique gids of the wedges containing at least one such POI.
    region_gids: "np.ndarray"


class AnchorColumns:
    """Struct-of-arrays image of one anchor corner (see module docstring)."""

    __slots__ = ("quadrant", "frame", "regions", "xs", "ys", "poi_ids",
                 "sub_starts", "terms")

    def __init__(self, quadrant: int, frame: CanonicalFrame,
                 regions: AnchorRegions, xs: "np.ndarray", ys: "np.ndarray",
                 poi_ids: "np.ndarray", sub_starts: "np.ndarray",
                 terms: Dict[int, TermColumns]) -> None:
        self.quadrant = quadrant
        self.frame = frame
        self.regions = regions
        self.xs = xs
        self.ys = ys
        self.poi_ids = poi_ids
        self.sub_starts = sub_starts
        self.terms = terms

    @property
    def nbytes(self) -> int:
        """Bytes held by this anchor's arrays (term columns included)."""
        total = (self.xs.nbytes + self.ys.nbytes + self.poi_ids.nbytes
                 + self.sub_starts.nbytes)
        for columns in self.terms.values():
            total += columns.positions.nbytes + columns.region_gids.nbytes
        return total


def _compile_anchor(quadrant: int, frame: CanonicalFrame,
                    regions: AnchorRegions, world_x: "np.ndarray",
                    world_y: "np.ndarray",
                    terms_by_poi: List[List[int]]) -> AnchorColumns:
    """Lay one anchor's POIs and keyword runs out positionally."""
    order = np.asarray(regions.poi_order, dtype=np.int64)
    count = order.size
    sizes = np.fromiter((sub.size for sub in regions.subregions),
                        dtype=np.int64, count=regions.num_subregions)
    sub_starts = np.zeros(regions.num_subregions + 1, dtype=np.int64)
    np.cumsum(sizes, out=sub_starts[1:])
    gid_by_position = np.repeat(
        np.arange(regions.num_subregions, dtype=np.int64), sizes)
    position_of = np.empty(count, dtype=np.int64)
    position_of[order] = np.arange(count, dtype=np.int64)
    runs: Dict[int, List[int]] = {}
    for poi_id in range(count):
        position = int(position_of[poi_id])
        for term_id in terms_by_poi[poi_id]:
            runs.setdefault(term_id, []).append(position)
    terms = {}
    for term_id, positions in runs.items():
        sorted_positions = np.sort(np.asarray(positions, dtype=np.int64))
        terms[term_id] = TermColumns(
            sorted_positions,
            np.unique(gid_by_position[sorted_positions]))
    return AnchorColumns(quadrant, frame, regions, world_x[order],
                         world_y[order], order, sub_starts, terms)


class ColumnarSnapshot:
    """A frozen, position-indexed image of every built anchor."""

    def __init__(self, index: DesksIndex) -> None:
        tick = time.perf_counter()
        self.index = index
        self.collection = index.collection
        count = len(self.collection)
        world_x = np.empty(count, dtype=np.float64)
        world_y = np.empty(count, dtype=np.float64)
        terms_by_poi: List[List[int]] = []
        for poi_id in range(count):
            location = self.collection.location(poi_id)
            world_x[poi_id] = location.x
            world_y[poi_id] = location.y
            terms_by_poi.append(sorted(self.collection.term_ids(poi_id)))
        self.anchors: List[Optional[AnchorColumns]] = [None] * 4
        for quadrant, anchor in enumerate(index.anchors):
            if anchor is None:
                continue
            self.anchors[quadrant] = _compile_anchor(
                quadrant, anchor.frame, anchor.regions, world_x, world_y,
                terms_by_poi)
        self.build_seconds = time.perf_counter() - tick

    @classmethod
    def from_index(cls, index: DesksIndex) -> "ColumnarSnapshot":
        """Compile ``index`` into a snapshot (alias for the constructor)."""
        return cls(index)

    def anchor_columns(self, quadrant: int) -> AnchorColumns:
        """The columnar image for ``quadrant``; raises if it wasn't built."""
        columns = self.anchors[quadrant]
        if columns is None:
            raise ValueError(
                f"anchor {quadrant} was not built for this index")
        return columns

    @property
    def nbytes(self) -> int:
        """Total bytes held by the snapshot's arrays."""
        return sum(columns.nbytes for columns in self.anchors
                   if columns is not None)
