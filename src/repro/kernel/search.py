"""Vectorised band/wedge scan over the columnar snapshot.

``ColumnarSearcher`` is a drop-in replacement for
:class:`~repro.core.search.DesksSearcher`: same ``search`` signature,
same spans, same ``SearchStats`` counters, bit-identical answers.  The
*decisions* — band order (Eq. 4), Lemma 1 skips and termination, the
Lemma 2-4 wedge window, and every per-wedge ``MINDIST`` (Table I) —
reuse the scalar implementations verbatim, so pruning counts cannot
drift.  What is vectorised is the per-POI verification inside each
wedge: keyword-run intersection, direction membership, and the distance
prefilter run as whole-array operations.

Bit-exactness is kept by a prefilter-then-confirm discipline, because
``np.arctan2`` / ``np.hypot`` are *not* guaranteed bit-identical to
their ``math`` counterparts:

- direction: ``arc_contains`` (exact arithmetic on approximate
  ``np.arctan2`` directions) classifies each POI and flags every
  element within ``1e-9`` of a decision boundary — those few are
  re-decided with the scalar ``angle_of`` + ``DirectionInterval``
  path.  The ulp error of ``arctan2`` is ~1e-15, six orders below the
  slack, so no misclassification can hide outside the flagged set.
- distance: ``np.hypot`` orders candidates approximately; any POI
  within the (slack-widened) current ``d_k`` is re-measured with
  ``math.hypot`` before it is offered to the top-k heap, and only the
  exact value is compared or stored.

``search_batch`` answers many queries on one searcher, amortising
keyword resolution and candidate-plan construction through per-instance
caches keyed on ``(quadrant, term ids, match mode)`` — repeated keyword
sets (every serving workload) skip straight to the array scans.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.mindist import (
    BasicQueryGeometry,
    band_mindist,
    basic_geometry,
    subregion_mindist,
)
from ..core.query import DirectionalQuery, MatchMode, QueryResult, ResultEntry
from ..core.regions import Band
from ..core.search import (
    INF,
    PruningMode,
    SupportsExpired,
    _emit_query_spans,
    _TopK,
)
from ..core.trace import BandTrace, QueryTrace, WedgeTrace
from ..geometry import ANGLE_EPS, TWO_PI, angle_of, arc_contains_vectors
from ..storage import SearchStats
from ..trace.spans import current_tracer
from .snapshot import AnchorColumns, ColumnarSnapshot

#: Angular distance (radians) from a containment boundary under which a
#: vectorised direction decision is re-confirmed with scalar math.  Six
#: orders of magnitude above arctan2's worst-case ulp disagreement.
_DIRECTION_SLACK = 1e-9

#: Relative widening of ``d_k`` for the approximate distance prefilter;
#: anything inside is re-measured exactly before the heap sees it.
_KTH_SLACK = 1e-9

#: Bound on the per-searcher plan caches (cleared wholesale when full).
_PLAN_CACHE_LIMIT = 512


class _TermPlan:
    """Cached columnar access plan for one (anchor, keyword set) pair.

    Holds the sub-regions that can contain an answer (the paper's
    ``L^R_K``) plus each keyword's position runs, and lazily caches the
    per-band combined survivor positions — the expensive part of a
    repeated query's scan.
    """

    __slots__ = ("candidate_gids", "term_positions", "conjunctive",
                 "_band_cache")

    def __init__(self, candidate_gids: "np.ndarray",
                 term_positions: List["np.ndarray"],
                 conjunctive: bool) -> None:
        self.candidate_gids = candidate_gids
        self.term_positions = term_positions
        self.conjunctive = conjunctive
        self._band_cache: Dict[int, "np.ndarray"] = {}

    def band_positions(self, band: Band, sub_starts: "np.ndarray",
                       ) -> Tuple["np.ndarray", "np.ndarray"]:
        """Positions in ``band`` matching the keyword predicate (sorted).

        ALL-mode intersects the keywords' band runs (smallest first,
        early exit on empty); ANY-mode unions them.  Positions are
        globally unique, so set semantics match the object path's
        per-wedge ``set`` algebra exactly.  Returns ``(positions,
        offsets)`` where ``offsets[w] : offsets[w + 1]`` slices
        ``positions`` down to the band's ``w``-th wedge — the per-wedge
        scan does no further searching.
        """
        cached = self._band_cache.get(band.index)
        if cached is None:
            first_gid = band.first_gid
            wedge_bounds = sub_starts[first_gid:
                                      first_gid + len(band.subregions) + 1]
            start = int(wedge_bounds[0])
            end = int(wedge_bounds[-1])
            runs = []
            for positions in self.term_positions:
                lo = int(np.searchsorted(positions, start))
                hi = int(np.searchsorted(positions, end))
                runs.append(positions[lo:hi])
            if self.conjunctive:
                runs.sort(key=len)
                merged = runs[0]
                for other in runs[1:]:
                    if merged.size == 0:
                        break
                    merged = np.intersect1d(merged, other,
                                            assume_unique=True)
            elif len(runs) == 1:
                merged = runs[0]
            else:
                merged = np.unique(np.concatenate(runs))
            cached = (merged, np.searchsorted(merged, wedge_bounds))
            self._band_cache[band.index] = cached
        return cached


@dataclass
class _KernelSubquery:
    """Per-anchor state of one basic sub-query (columnar flavour)."""

    quadrant: int
    columns: AnchorColumns
    geometry: BasicQueryGeometry
    plan: _TermPlan
    _bounds_cache: Dict[int, Tuple[float, float]] = field(
        default_factory=dict)

    def band_bounds(self, band: Band) -> Tuple[float, float]:
        cached = self._bounds_cache.get(band.index)
        if cached is None:
            cached = self.geometry.band_direction_bounds(band.outer_radius)
            self._bounds_cache[band.index] = cached
        return cached


class ColumnarSearcher:
    """Answers DESKS queries over a :class:`ColumnarSnapshot`.

    Accepts either a frozen :class:`~repro.core.index.DesksIndex` (a
    snapshot is compiled on the spot) or a prebuilt snapshot — engine
    worker pools share one snapshot across searchers.  The per-instance
    plan caches are not thread-safe; give each concurrent worker its own
    searcher, as :class:`~repro.service.QueryEngine` does.
    """

    def __init__(self, source) -> None:
        if isinstance(source, ColumnarSnapshot):
            snapshot = source
        else:
            snapshot = ColumnarSnapshot(source)
        self.snapshot = snapshot
        self.index = snapshot.index
        self._collection = snapshot.collection
        self._term_cache: Dict[Tuple[FrozenSet[str], bool],
                               Optional[FrozenSet[int]]] = {}
        self._plan_cache: Dict[Tuple[int, Tuple[int, ...], bool],
                               Optional[_TermPlan]] = {}

    @property
    def io_stats(self):
        """The source index's I/O counters (the snapshot reads no pages)."""
        return self.index.io_stats

    # -- public API -----------------------------------------------------------

    def search(self, query: DirectionalQuery,
               mode: PruningMode = PruningMode.RD,
               stats: Optional[SearchStats] = None,
               seed_entries: Optional[Iterable[ResultEntry]] = None,
               trace: Optional[QueryTrace] = None,
               deadline: Optional["SupportsExpired"] = None) -> QueryResult:
        """Same contract as :meth:`DesksSearcher.search`, same answers."""
        tracer = current_tracer()
        if tracer is None:
            return self._search_impl(query, mode, stats, seed_entries,
                                     trace, deadline)
        qtrace = trace if trace is not None else QueryTrace()
        with tracer.span("desks.search", mode=mode.name, k=query.k) as span:
            result = self._search_impl(query, mode, stats, seed_entries,
                                       qtrace, deadline)
            _emit_query_spans(tracer, span, qtrace, result)
        return result

    def search_batch(self, queries: Sequence[DirectionalQuery],
                     mode: PruningMode = PruningMode.RD,
                     stats: Optional[Sequence[Optional[SearchStats]]] = None,
                     deadline: Optional["SupportsExpired"] = None,
                     ) -> List[QueryResult]:
        """Answer ``queries`` in order, amortising plan construction.

        The searcher's term/plan/band caches persist across the batch
        (and across batches), so repeated keyword sets resolve to arrays
        already sliced and intersected.  ``stats``, when given, must be
        one :class:`SearchStats` (or ``None``) per query.
        """
        if stats is not None and len(stats) != len(queries):
            raise ValueError(
                f"stats has {len(stats)} slots for {len(queries)} queries")
        results: List[QueryResult] = []
        for position, query in enumerate(queries):
            per_query = stats[position] if stats is not None else None
            results.append(self.search(query, mode, stats=per_query,
                                       deadline=deadline))
        return results

    # -- Algorithm 2 over arrays -------------------------------------------------

    def _search_impl(self, query: DirectionalQuery,
                     mode: PruningMode,
                     stats: Optional[SearchStats],
                     seed_entries: Optional[Iterable[ResultEntry]],
                     trace: Optional[QueryTrace],
                     deadline: Optional["SupportsExpired"]) -> QueryResult:
        collector = _TopK(query.k, seed=seed_entries)
        conjunctive = query.match_mode is MatchMode.ALL
        term_ids = self._resolve_terms(query.keywords, conjunctive)
        if term_ids is None:
            if trace is not None:
                trace.num_results = len(collector.entries())
            return QueryResult(collector.entries())
        if trace is not None:
            io = self.index.io_stats
            pages_before = io.logical_reads
            tick = time.perf_counter()
        subqueries = self._prepare_subqueries(query, term_ids)
        if trace is not None:
            trace.prepare_seconds = time.perf_counter() - tick
            trace.prepare_pages = io.logical_reads - pages_before
        completed = self._run(query, subqueries, collector, mode, stats,
                              trace, deadline)
        result = QueryResult(collector.entries(), partial=not completed)
        if trace is not None:
            trace.num_results = len(result)
        return result

    def _resolve_terms(self, keywords: FrozenSet[str],
                       conjunctive: bool) -> Optional[FrozenSet[int]]:
        key = (keywords, conjunctive)
        if key not in self._term_cache:
            if len(self._term_cache) >= _PLAN_CACHE_LIMIT:
                self._term_cache.clear()
            self._term_cache[key] = self._collection.query_term_ids(
                keywords, require_all=conjunctive)
        return self._term_cache[key]

    def _prepare_subqueries(self, query: DirectionalQuery,
                            term_ids: Iterable[int],
                            ) -> List[_KernelSubquery]:
        conjunctive = query.match_mode is MatchMode.ALL
        term_key = tuple(sorted(term_ids))
        subqueries: List[_KernelSubquery] = []
        for quadrant, piece in query.basic_subqueries():
            columns = self.snapshot.anchor_columns(quadrant)
            plan = self._plan_for(columns, term_key, conjunctive)
            if plan is None:
                continue
            geometry = basic_geometry(
                columns.frame, query.location,
                columns.frame.basic_interval(piece))
            subqueries.append(_KernelSubquery(quadrant, columns, geometry,
                                              plan))
        return subqueries

    def _plan_for(self, columns: AnchorColumns, term_key: Tuple[int, ...],
                  conjunctive: bool) -> Optional[_TermPlan]:
        key = (columns.quadrant, term_key, conjunctive)
        if key in self._plan_cache:
            return self._plan_cache[key]
        if len(self._plan_cache) >= _PLAN_CACHE_LIMIT:
            self._plan_cache.clear()
        term_positions: Optional[List["np.ndarray"]] = []
        gid_runs: List["np.ndarray"] = []
        for term_id in term_key:
            term_columns = columns.terms.get(term_id)
            if term_columns is None:
                if conjunctive:
                    term_positions = None
                    break
                continue  # ANY: a missing keyword contributes nothing
            term_positions.append(term_columns.positions)
            gid_runs.append(term_columns.region_gids)
        plan: Optional[_TermPlan] = None
        if term_positions:
            if conjunctive:
                gids = gid_runs[0]
                for other in gid_runs[1:]:
                    gids = np.intersect1d(gids, other, assume_unique=True)
            elif len(gid_runs) == 1:
                gids = gid_runs[0]
            else:
                gids = np.unique(np.concatenate(gid_runs))
            if gids.size:
                plan = _TermPlan(gids, term_positions, conjunctive)
        self._plan_cache[key] = plan
        return plan

    def _run(self, query: DirectionalQuery,
             subqueries: List[_KernelSubquery], collector: _TopK,
             mode: PruningMode, stats: Optional[SearchStats],
             trace: Optional[QueryTrace] = None,
             deadline: Optional["SupportsExpired"] = None) -> bool:
        """The shared band queue of Algorithm 2 — scalar, as in core."""
        heap: List[Tuple[float, int, int, _KernelSubquery]] = []
        seq = 0

        def push_band(sub: _KernelSubquery, band_idx: int) -> None:
            nonlocal seq
            bands = sub.columns.regions.bands
            if band_idx >= len(bands):
                return
            heapq.heappush(
                heap,
                (self._band_priority(sub, bands[band_idx], mode),
                 seq, band_idx, sub))
            seq += 1

        for sub in subqueries:
            start = self._initial_band(sub, mode)
            if trace is not None:
                trace.record_subquery(
                    sub.quadrant, sub.geometry.alpha, sub.geometry.beta,
                    start, int(sub.plan.candidate_gids.size))
            push_band(sub, start)

        while heap:
            if deadline is not None and deadline.expired():
                return False
            priority, _, band_idx, sub = heapq.heappop(heap)
            if priority is INF:
                continue
            if mode.region and priority >= collector.kth_distance:
                if trace is not None:
                    trace.record_termination(sub.quadrant, band_idx,
                                             priority)
                break
            if stats is not None:
                stats.regions_examined += 1
            band = sub.columns.regions.bands[band_idx]
            band_trace = (trace.begin_band(sub.quadrant, band_idx, priority)
                          if trace is not None else None)
            if band_trace is not None:
                tick = time.perf_counter()
            completed = self._scan_band(query, sub, band, collector, mode,
                                        stats, band_trace, deadline)
            if band_trace is not None:
                band_trace.seconds = time.perf_counter() - tick
            if not completed:
                return False
            push_band(sub, band_idx + 1)
        return True

    def _initial_band(self, sub: _KernelSubquery, mode: PruningMode) -> int:
        if mode.region and sub.geometry.inside_rect:
            return sub.columns.regions.band_of_distance(sub.geometry.qd)
        return 0

    def _band_priority(self, sub: _KernelSubquery, band: Band,
                       mode: PruningMode) -> float:
        if mode.region:
            return band_mindist(sub.geometry, band.inner_radius,
                                band.outer_radius)
        return float(band.index)

    # -- FindCandRegions (scalar) + FindCandPOIs (vectorised) --------------------

    def _scan_band(self, query: DirectionalQuery, sub: _KernelSubquery,
                   band: Band, collector: _TopK, mode: PruningMode,
                   stats: Optional[SearchStats],
                   band_trace: Optional[BandTrace] = None,
                   deadline: Optional["SupportsExpired"] = None) -> bool:
        candidates = self._candidate_subregions(sub, band, collector, mode,
                                                stats, band_trace)
        scanned = 0
        completed = True
        band_positions: Optional[Tuple["np.ndarray", "np.ndarray"]] = None
        for position, (mindist, subregion_gid) in enumerate(candidates):
            if mode.direction and mindist >= collector.kth_distance:
                if band_trace is not None:
                    band_trace.subregions_mindist_pruned += \
                        len(candidates) - position
                break
            if deadline is not None and deadline.expired():
                completed = False
                break
            scanned += 1
            if band_positions is None:
                band_positions = sub.plan.band_positions(
                    band, sub.columns.sub_starts)
            if band_trace is not None:
                fetched = band_trace.pois_fetched
                verified = band_trace.pois_verified
                tick = time.perf_counter()
            self._scan_wedge(query, sub, band_positions,
                             subregion_gid - band.first_gid, collector,
                             stats, band_trace)
            if band_trace is not None:
                band_trace.wedges.append(WedgeTrace(
                    subregion_gid, mindist,
                    time.perf_counter() - tick,
                    band_trace.pois_fetched - fetched,
                    band_trace.pois_verified - verified,
                    0))  # arrays are resident: a wedge never reads a page
        if band_trace is not None:
            band_trace.subregions_kept = scanned
        return completed

    def _candidate_subregions(self, sub: _KernelSubquery, band: Band,
                              collector: _TopK, mode: PruningMode,
                              stats: Optional[SearchStats],
                              band_trace: Optional[BandTrace] = None,
                              ) -> List[Tuple[float, int]]:
        """FINDCANDREGIONS, verbatim scalar bounds over array gid runs."""
        regions = sub.columns.regions
        geo = sub.geometry
        first_gid = band.first_gid
        end_gid = first_gid + len(band.subregions)
        if mode.direction:
            tau_lo, tau_hi = sub.band_bounds(band)
            lo_idx, hi_idx = regions.candidate_wedge_range(band, tau_lo,
                                                           tau_hi)
            gid_lo, gid_hi = first_gid + lo_idx, first_gid + hi_idx
            if band_trace is not None:
                band_trace.tau_bounds = (tau_lo, tau_hi)
                band_trace.wedge_window = (lo_idx, hi_idx)
        else:
            gid_lo, gid_hi = first_gid, end_gid
        gids = sub.plan.candidate_gids
        start = int(np.searchsorted(gids, gid_lo))
        end = int(np.searchsorted(gids, gid_hi))
        if band_trace is not None and mode.direction:
            in_band = (int(np.searchsorted(gids, end_gid))
                       - int(np.searchsorted(gids, first_gid)))
            band_trace.subregions_window_pruned = in_band - (end - start)
            band_trace.mindist_evaluations = end - start
        out: List[Tuple[float, int]] = []
        pruned = 0
        for gid in gids[start:end].tolist():
            if stats is not None:
                stats.subregions_examined += 1
            if mode.direction:
                wedge = regions.subregions[gid]
                mindist = subregion_mindist(
                    geo, band.inner_radius, band.outer_radius,
                    wedge.theta_lo, wedge.theta_hi)
                if mindist >= collector.kth_distance:
                    pruned += 1
                    continue
            else:
                mindist = 0.0
            out.append((mindist, gid))
        if band_trace is not None:
            band_trace.subregions_mindist_pruned = pruned
        out.sort()
        return out

    def _scan_wedge(self, query: DirectionalQuery, sub: _KernelSubquery,
                    band_positions: Tuple["np.ndarray", "np.ndarray"],
                    wedge_index: int, collector: _TopK,
                    stats: Optional[SearchStats],
                    band_trace: Optional[BandTrace] = None) -> None:
        """FINDCANDPOIS over one wedge's contiguous array slice."""
        columns = sub.columns
        positions, offsets = band_positions
        lo = offsets[wedge_index]
        hi = offsets[wedge_index + 1]
        count = int(hi - lo)
        if count == 0:
            return
        survivors = positions[lo:hi]
        if stats is not None:
            stats.pois_examined += count
            stats.distance_computations += count
        if band_trace is not None:
            band_trace.pois_fetched += count
        location = query.location
        dxs = columns.xs[survivors] - location.x
        dys = columns.ys[survivors] - location.y
        coincident = (dxs == 0.0) & (dys == 0.0)
        interval = query.interval
        if interval.upper - interval.lower >= TWO_PI - ANGLE_EPS:
            verified = np.ones(count, dtype=bool)
        else:
            inside, borderline = arc_contains_vectors(
                dxs, dys, interval.lower, interval.upper,
                _DIRECTION_SLACK)
            if borderline.any():
                recheck = np.nonzero(borderline & ~coincident)[0]
                for position in recheck.tolist():
                    inside[position] = interval.contains(
                        angle_of(float(dxs[position]), float(dys[position])))
            verified = inside | coincident
        verified_count = int(np.count_nonzero(verified))
        if stats is not None:
            stats.candidates_verified += verified_count
        if band_trace is not None:
            band_trace.pois_verified += verified_count
        if verified_count == 0:
            return
        kth = collector.kth_distance
        offered = np.nonzero(verified)[0]
        approx = np.hypot(dxs[offered], dys[offered])
        if not math.isinf(kth):
            keep = approx <= kth * (1.0 + _KTH_SLACK)
            offered = offered[keep]
            approx = approx[keep]
        if offered.size == 0:
            return
        poi_ids = columns.poi_ids[survivors[offered]]
        # Ascending by approximate distance: once one candidate's widened
        # approximation exceeds the live d_k, every later one must too
        # (exact distance is within one ulp of the approximation, far
        # inside the slack), so the tail is cut without measuring it.
        for rank in np.argsort(approx, kind="stable").tolist():
            if approx[rank] > collector.kth_distance * (1.0 + _KTH_SLACK):
                break
            position = int(offered[rank])
            distance = math.hypot(dxs[position], dys[position])
            if distance < collector.kth_distance:
                collector.add(int(poi_ids[rank]), distance)
