"""Baseline competitors: filter-and-verify, MIR2-tree, LkT/IR-tree."""

from .base import BaselineIndex, FilterThenVerify
from .grid import GridIndex
from .lkt import IRTree
from .mir2tree import MIR2Tree

__all__ = [
    "BaselineIndex",
    "FilterThenVerify",
    "GridIndex",
    "IRTree",
    "MIR2Tree",
]
