"""LkT / IR-tree baseline [Cong, Jensen, Wu — VLDB 2009].

An R-tree where every node carries an *inverted file*: for each keyword,
the set of child entries whose subtree contains it.  A child is followed
only when every query keyword lists it — exact containment pruning at
entry granularity (unlike signatures there are no hash false positives,
but a subtree containing all keywords spread over different POIs is still
a false positive for conjunctive matching).

The original LkT ranks by a mix of spatial and textual relevance; the
paper's evaluation (and ours) uses it for boolean containment + distance
ranking, extended with the same direction check as the other baselines.
The per-node inverted files dominate the index size — reproducing Table
III's observation that LkT's index is by far the largest.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..rtree import Node
from .base import BaselineIndex


class IRTree(BaselineIndex):
    """R-tree + per-node inverted files (the LkT index)."""

    name = "LkT"

    def _build_summaries(self) -> None:
        #: node_id -> term_id -> bitmask of child entry positions.
        self._node_inverted: Dict[int, Dict[int, int]] = {}
        #: node_id -> total subtree postings (for the size model below).
        self._node_postings: Dict[int, int] = {}
        self._build_node(self.tree.root)

    def _build_node(self, node: Node) -> FrozenSet[int]:
        """Build this node's inverted file; returns its subtree term set."""
        inverted: Dict[int, int] = {}
        postings = 0
        for idx, entry in enumerate(node.entries):
            if node.is_leaf:
                child_terms = self.collection.term_ids(entry.child)
                postings += len(child_terms)
            else:
                child_terms = self._build_node(entry.child)
                postings += self._node_postings[entry.child.node_id]
            bit = 1 << idx
            for term_id in child_terms:
                inverted[term_id] = inverted.get(term_id, 0) | bit
        self._node_inverted[node.node_id] = inverted
        self._node_postings[node.node_id] = postings
        return frozenset(inverted)

    def entry_allowed(self, node: Node, entry_index: int,
                      query_terms: FrozenSet[int],
                      match_all: bool = True) -> bool:
        inverted = self._node_inverted[node.node_id]
        bit = 1 << entry_index
        if match_all:
            for term_id in query_terms:
                postings = inverted.get(term_id)
                if postings is None or not postings & bit:
                    return False
            return True
        return any(inverted.get(term_id, 0) & bit
                   for term_id in query_terms)

    @property
    def summary_size_bytes(self) -> int:
        """Inverted-file footprint as the real IR-tree pays it.

        Each node's inverted file indexes the *objects of its whole
        subtree* (term -> posting list of object ids with weights), so
        every term occurrence is stored once per tree level above it: ~12 B
        per (object, weight) posting plus ~16 B per distinct-term directory
        entry per node.  That per-level replication is why Table III
        reports LkT's index an order of magnitude above the others; at our
        scaled-down tree heights the amplification factor is smaller (see
        EXPERIMENTS.md).
        """
        total = 0
        for node_id, inverted in self._node_inverted.items():
            total += 16 * len(inverted) + 12 * self._node_postings[node_id]
        return total
