"""Grid-file baseline: uniform cells with per-cell inverted lists.

The survey literature's other mainstream spatial-keyword family (besides
R-tree hybrids) partitions space into a uniform grid and attaches an
inverted list to each cell.  A top-k query expands cells best-first by
``MINDIST(q, cell)``; keyword filtering intersects the cell's lists;
direction is verified per POI (and optionally pruned per cell with the
same exact subtended-arc test the other baselines can use).

Included as an extra comparator: it shares DESKS's "textual pruning at
spatial-bucket granularity" idea but its buckets ignore both distance
*rings* and *direction*, which is exactly what the DESKS structure adds.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..core.query import (
    DirectionalQuery,
    MatchMode,
    QueryResult,
    ResultEntry,
)
from ..datasets import POICollection
from ..geometry import MBR, direction_overlaps_mbr
from ..storage import SearchStats
from ..text import intersect_sorted, union_sorted


class GridIndex:
    """Uniform grid with per-cell keyword inverted lists."""

    name = "grid"

    def __init__(self, collection: POICollection,
                 target_pois_per_cell: float = 16.0) -> None:
        if target_pois_per_cell <= 0:
            raise ValueError(
                f"target_pois_per_cell must be positive: "
                f"{target_pois_per_cell}")
        self.collection = collection
        started = time.perf_counter()
        n = len(collection)
        self.cells_per_side = max(
            1, int(math.sqrt(n / target_pois_per_cell)))
        mbr = collection.mbr
        # Degenerate extents (collinear datasets) still need positive cell
        # sizes for the coordinate->cell arithmetic.
        self._cell_w = max(mbr.width / self.cells_per_side, 1e-12)
        self._cell_h = max(mbr.height / self.cells_per_side, 1e-12)
        self._origin_x = mbr.min_x
        self._origin_y = mbr.min_y
        #: cell id -> poi ids (sorted), and cell id -> term -> poi ids.
        self._cell_pois: Dict[int, List[int]] = {}
        self._cell_terms: Dict[int, Dict[int, List[int]]] = {}
        for poi in collection:
            cell = self._cell_of(poi.location.x, poi.location.y)
            self._cell_pois.setdefault(cell, []).append(poi.poi_id)
            terms = self._cell_terms.setdefault(cell, {})
            for term_id in collection.term_ids(poi.poi_id):
                terms.setdefault(term_id, []).append(poi.poi_id)
        self.build_seconds = time.perf_counter() - started

    # -- geometry ------------------------------------------------------------

    def _cell_of(self, x: float, y: float) -> int:
        col = min(int((x - self._origin_x) / self._cell_w),
                  self.cells_per_side - 1)
        row = min(int((y - self._origin_y) / self._cell_h),
                  self.cells_per_side - 1)
        return max(row, 0) * self.cells_per_side + max(col, 0)

    def cell_mbr(self, cell: int) -> MBR:
        """The rectangle of a cell id."""
        row, col = divmod(cell, self.cells_per_side)
        x0 = self._origin_x + col * self._cell_w
        y0 = self._origin_y + row * self._cell_h
        return MBR(x0, y0, x0 + self._cell_w, y0 + self._cell_h)

    # -- size ---------------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        """4 B per posting + 8 B per (cell, term) directory entry."""
        postings = sum(len(pois) for terms in self._cell_terms.values()
                       for pois in terms.values())
        headers = sum(len(terms) for terms in self._cell_terms.values())
        return 4 * postings + 8 * headers + 16 * len(self._cell_pois)

    # -- search ------------------------------------------------------------------

    def search(self, query: DirectionalQuery,
               stats: Optional[SearchStats] = None,
               prune_direction: bool = False) -> QueryResult:
        """Best-first cell expansion; same verification as the baselines."""
        term_ids = self.collection.query_term_ids(
            query.keywords,
            require_all=query.match_mode is MatchMode.ALL)
        if term_ids is None:
            return QueryResult([])
        out: List[ResultEntry] = []
        for poi_id, distance in self._candidates(query, term_ids, stats,
                                                 prune_direction):
            poi = self.collection[poi_id]
            if stats is not None:
                stats.candidates_verified += 1
            if not query.matches(poi.location, poi.keywords):
                continue
            out.append(ResultEntry(poi_id, distance))
            if len(out) == query.k:
                break
        return QueryResult(out)

    def _candidates(self, query: DirectionalQuery,
                    term_ids: FrozenSet[int],
                    stats: Optional[SearchStats],
                    prune_direction: bool,
                    ) -> Iterator[Tuple[int, float]]:
        """POIs in distance order, cell by cell, keyword-filtered."""
        q = query.location
        conjunctive = query.match_mode is MatchMode.ALL
        # Heap entries: (distance, tiebreak, kind, payload) where kind is
        # "cell" (payload = cell id, distance = MINDIST) or "poi"
        # (payload = poi id, distance exact).
        heap: List[Tuple[float, int, str, int]] = []
        counter = 0
        for cell in self._cell_pois:
            box = self.cell_mbr(cell)
            if prune_direction and not direction_overlaps_mbr(
                    q, query.interval, box):
                continue
            heapq.heappush(
                heap, (box.min_distance_to_point(q), counter, "cell", cell))
            counter += 1
        while heap:
            distance, _, kind, payload = heapq.heappop(heap)
            if kind == "poi":
                yield payload, distance
                continue
            if stats is not None:
                stats.nodes_examined += 1
            terms = self._cell_terms.get(payload, {})
            lists = [terms.get(t, []) for t in term_ids]
            if conjunctive:
                matching = intersect_sorted(lists)
            else:
                matching = union_sorted(lists)
            for poi_id in matching:
                if stats is not None:
                    stats.pois_examined += 1
                    stats.distance_computations += 1
                d = q.distance_to(self.collection.location(poi_id))
                heapq.heappush(heap, (d, counter, "poi", poi_id))
                counter += 1
