"""MIR2-tree baseline [Felipe, Hristidis, Rishe — ICDE 2008].

An R-tree where every node carries a fixed-width keyword *signature*: the
bitwise OR of the signatures of all keywords in its subtree.  During the
kNN descent a child is pruned when the query signature is not a subset of
the child's — a test with false positives (hash collisions) but no false
negatives.  The paper compares against the memory-optimised variant
("MIR2-tree"); our reproduction keeps the signature table in a side dict,
which is exactly that variant's behaviour.

Direction extension (paper Sec. VI): children whose MBR cannot overlap the
query sector are pruned too.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..datasets import POICollection
from ..rtree import Node
from ..text import SignatureScheme
from .base import BaselineIndex


class MIR2Tree(BaselineIndex):
    """R-tree + per-node keyword signatures."""

    name = "MIR2-tree"

    def __init__(self, collection: POICollection, fanout: int = 50,
                 signature_bits: int = 512, signature_hashes: int = 3,
                 ) -> None:
        self.scheme = SignatureScheme(signature_bits, signature_hashes)
        super().__init__(collection, fanout)

    def _build_summaries(self) -> None:
        self._node_signature: Dict[int, int] = {}
        self._poi_signature: Dict[int, int] = {}
        # Query signatures are recomputed per entry check otherwise; one
        # small memo covers the repeated keyword sets of a workload.
        self._query_sig_cache: Dict[FrozenSet[int], int] = {}
        self._compute_signature(self.tree.root)

    def _compute_signature(self, node: Node) -> int:
        signature = 0
        for entry in node.entries:
            if node.is_leaf:
                poi_sig = self.scheme.signature_of(
                    self.collection.term_ids(entry.child))
                self._poi_signature[entry.child] = poi_sig
                signature |= poi_sig
            else:
                signature |= self._compute_signature(entry.child)
        self._node_signature[node.node_id] = signature
        return signature

    def entry_allowed(self, node: Node, entry_index: int,
                      query_terms: FrozenSet[int],
                      match_all: bool = True) -> bool:
        entry = node.entries[entry_index]
        if node.is_leaf:
            child_sig = self._poi_signature[entry.child]
        else:
            child_sig = self._node_signature[entry.child.node_id]
        if match_all:
            query_sig = self._query_sig_cache.get(query_terms)
            if query_sig is None:
                query_sig = self.scheme.signature_of(query_terms)
                self._query_sig_cache[query_terms] = query_sig
            return SignatureScheme.might_contain(child_sig, query_sig)
        # Disjunctive: the subtree may match if any single term's bits are
        # all present.
        return any(
            SignatureScheme.might_contain(
                child_sig, self.scheme.term_signature(term_id))
            for term_id in query_terms)

    @property
    def summary_size_bytes(self) -> int:
        per_sig = self.scheme.bytes_per_signature
        return per_sig * (len(self._node_signature)
                          + len(self._poi_signature))
