"""Shared machinery for the baseline competitors.

The paper extends two published spatial-keyword indexes — MIR2-tree [6] and
LkT/IR-tree [5] — to direction-aware search "by examining whether each
accessed MBR (or POI) is in the search direction".  Both are R-trees whose
descent prunes children by a per-node textual summary; they differ only in
what that summary is (signatures vs inverted files).  This module hosts the
common best-first kNN engine with three hook points:

* ``entry_allowed(node, entry)`` — textual pruning of a child entry;
* the direction check against the MBR (shared, exact for rectangles);
* exact keyword + direction verification of candidate POIs.
"""

from __future__ import annotations

import heapq
import time
from typing import FrozenSet, Iterator, List, Optional, Tuple

from ..datasets import POICollection
from ..geometry import direction_overlaps_mbr
from ..rtree import Neighbor, Node, RTree
from ..storage import SearchStats
from ..core.query import (
    DirectionalQuery,
    MatchMode,
    QueryResult,
    ResultEntry,
)


class BaselineIndex:
    """Base class: an R-tree over the collection plus textual summaries."""

    #: Human-readable method name for benchmark tables.
    name = "baseline"

    def __init__(self, collection: POICollection, fanout: int = 50) -> None:
        self.collection = collection
        started = time.perf_counter()
        items = [(poi.location, poi.poi_id) for poi in collection]
        self.tree = RTree.bulk_load(items, fanout=fanout)
        self._build_summaries()
        self.build_seconds = time.perf_counter() - started

    # -- subclass hooks ------------------------------------------------------

    def _build_summaries(self) -> None:
        """Attach per-node textual summaries (default: none)."""

    def entry_allowed(self, node: Node, entry_index: int,
                      query_terms: FrozenSet[int],
                      match_all: bool = True) -> bool:
        """May the subtree/POI under this entry match the query terms?

        ``match_all`` selects conjunctive (the paper's) vs disjunctive
        semantics.  Sound textual pruning: must return True whenever the
        answer could be yes (false positives allowed, false negatives
        not).
        """
        return True

    # -- size accounting -------------------------------------------------------

    @property
    def tree_size_bytes(self) -> int:
        """Approximate R-tree footprint: 40 B/entry + 16 B/node."""
        entries = sum(len(n.entries) for n in self.tree.iter_nodes())
        return 40 * entries + 16 * self.tree.num_nodes

    @property
    def size_bytes(self) -> int:
        return self.tree_size_bytes + self.summary_size_bytes

    @property
    def summary_size_bytes(self) -> int:
        return 0

    # -- search ------------------------------------------------------------------

    def search(self, query: DirectionalQuery,
               stats: Optional[SearchStats] = None,
               prune_direction: bool = False) -> QueryResult:
        """Direction-extended best-first top-k.

        The default (``prune_direction=False``) is the paper's extension of
        the baselines: candidates are drawn in distance order using keyword
        pruning only, and the direction constraint is verified per POI.
        Its cost explodes for narrow directions — most candidates fail
        verification — which is exactly the behaviour Figures 17-19 show.

        ``prune_direction=True`` additionally prunes subtrees whose MBR
        subtends no direction inside the query interval (an exact test for
        rectangles).  This is *stronger* than the paper's baselines — such
        direction-aware pruning is DESKS's own contribution — and is kept
        as an ablation: see ``benchmarks/test_ablation_baseline_direction``.
        """
        term_ids = self.collection.query_term_ids(
            query.keywords,
            require_all=query.match_mode is MatchMode.ALL)
        if term_ids is None:
            return QueryResult([])
        out: List[ResultEntry] = []
        for neighbor in self._candidate_stream(query, term_ids, stats,
                                               prune_direction):
            poi = self.collection[neighbor.object_id]
            if stats is not None:
                stats.candidates_verified += 1
            if not query.matches(poi.location, poi.keywords):
                continue
            out.append(ResultEntry(neighbor.object_id, neighbor.distance))
            if len(out) == query.k:
                break
        return QueryResult(out)

    def _candidate_stream(self, query: DirectionalQuery,
                          term_ids: FrozenSet[int],
                          stats: Optional[SearchStats],
                          prune_direction: bool) -> Iterator[Neighbor]:
        """Distance-ordered candidates surviving textual/direction pruning."""
        if len(self.tree) == 0:
            return
        q = query.location
        match_all = query.match_mode is MatchMode.ALL
        counter = 0
        heap: List[Tuple[float, int, object]] = [
            (self.tree.root.mbr().min_distance_to_point(q), 0,
             self.tree.root)]
        while heap:
            _, __, item = heapq.heappop(heap)
            if isinstance(item, Neighbor):
                yield item
                continue
            node: Node = item
            if stats is not None:
                stats.nodes_examined += 1
            for idx, entry in enumerate(node.entries):
                if not self.entry_allowed(node, idx, term_ids, match_all):
                    continue
                if prune_direction and not direction_overlaps_mbr(
                        q, query.interval, entry.mbr):
                    continue
                counter += 1
                distance = entry.mbr.min_distance_to_point(q)
                if node.is_leaf:
                    if stats is not None:
                        stats.pois_examined += 1
                        stats.distance_computations += 1
                    heapq.heappush(heap, (distance, counter,
                                          Neighbor(entry.child, distance)))
                else:
                    heapq.heappush(heap, (distance, counter, entry.child))


class FilterThenVerify(BaselineIndex):
    """The straightforward method of the paper's introduction.

    A plain R-tree; candidates are drawn by distance only (no textual or
    directional node pruning) and every candidate is verified afterwards.
    This is the weakest baseline and the motivation for everything else.
    """

    name = "filter-verify"

    def search(self, query: DirectionalQuery,
               stats: Optional[SearchStats] = None,
               prune_direction: bool = False) -> QueryResult:
        return super().search(query, stats, prune_direction=prune_direction)
